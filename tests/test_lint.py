"""repro.lint: checker fixtures, suppressions, baseline gate, CLI."""

import json
import textwrap
from pathlib import Path


from repro.cli import main as cli_main
from repro.lint import RULES, Finding, LintResult, Project, run_lint
from repro.lint.schema_drift import write_fingerprints

REPO_ROOT = Path(__file__).resolve().parent.parent


def make_project(tmp_path: Path, files: dict[str, str]) -> Path:
    """Lay out a miniature src/repro tree and return its repo root."""
    for rel, source in files.items():
        path = tmp_path / "src" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def run_rule(rule_id: str, root: Path) -> list[Finding]:
    return RULES[rule_id].check(Project(root))


# -- J1: fork safety ---------------------------------------------------------


class TestForkSafety:
    def test_unjournaled_item_write_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/handlers.py": """
                def handle(analyzer, edit, dirty):
                    state = analyzer.state
                    state.ribs[edit.prefix] = []
            """,
        })
        findings = run_rule("J1", root)
        assert len(findings) == 1
        assert "save_rib_prefix" in findings[0].message
        assert findings[0].path == "repro/core/handlers.py"

    def test_journaled_write_clean(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/handlers.py": """
                def handle(analyzer, edit, dirty):
                    state = analyzer.state
                    analyzer._journal.save_rib_prefix(edit.router, edit.prefix)
                    state.ribs[edit.prefix] = []
            """,
        })
        assert run_rule("J1", tmp_path) == []

    def test_save_after_mutation_flagged(self, tmp_path):
        # Before-image captures must PRECEDE the mutation; saving the
        # already-mutated state restores garbage on rollback.
        root = make_project(tmp_path, {
            "repro/core/handlers.py": """
                def handle(analyzer, edit, dirty):
                    state = analyzer.state
                    state.ribs[edit.prefix] = []
                    analyzer._journal.save_rib_prefix(edit.router, edit.prefix)
            """,
        })
        findings = run_rule("J1", root)
        assert len(findings) == 1
        assert "preceded" in findings[0].message

    def test_record_log_may_follow_mutation(self, tmp_path):
        # Append-log journal entries (record_*) replay, they do not
        # restore a before-image — calling after the fact is fine.
        root = make_project(tmp_path, {
            "repro/core/handlers.py": """
                def handle(analyzer, edit, dirty):
                    state = analyzer.state
                    removed = state.dataplane.invalidate_span(edit.span)
                    analyzer._journal.record_acl_span(edit.span, removed)
            """,
        })
        assert run_rule("J1", root) == []

    def test_missing_record_log_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/handlers.py": """
                def handle(analyzer, edit, dirty):
                    state = analyzer.state
                    state.dataplane.invalidate_span(edit.span)
            """,
        })
        findings = run_rule("J1", root)
        assert len(findings) == 1
        assert "record_acl_span" in findings[0].message

    def test_alias_chain_tracked(self, tmp_path):
        # rib = analyzer.state.ribs[r]; rib.install(...) is still a
        # mutation of analyzer-owned state.
        root = make_project(tmp_path, {
            "repro/core/pipeline.py": """
                class RecomputePipeline:
                    def recompute(self, edit):
                        rib = self.analyzer.state.ribs[edit.router]
                        rib.install(edit.route)
            """,
        })
        findings = run_rule("J1", root)
        assert len(findings) == 1
        assert "save_rib_prefix" in findings[0].message

    def test_out_of_scope_module_ignored(self, tmp_path):
        # Initial convergence / query code builds raw state before any
        # fork can exist; only the analyzer orbit is in contract.
        root = make_project(tmp_path, {
            "repro/query/build.py": """
                def build(analyzer, edit):
                    analyzer.state.ribs[edit.prefix] = []
            """,
        })
        assert run_rule("J1", root) == []

    def test_init_and_rollback_exempt(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/analyzer.py": """
                class DifferentialNetworkAnalyzer:
                    def __init__(self):
                        self.state.ribs = {}

                    def rollback_rib(self, prefix, image):
                        self.state.ribs[prefix] = image
            """,
        })
        assert run_rule("J1", root) == []

    def test_inline_suppression(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/handlers.py": """
                def handle(analyzer, edit, dirty):
                    state = analyzer.state
                    state.ribs[edit.prefix] = []  # repro-lint: disable=J1
            """,
        })
        assert run_rule("J1", root) == []


# -- D1: determinism ---------------------------------------------------------


class TestDeterminism:
    def test_wall_clock_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/delta.py": """
                import time

                def stamp():
                    return time.time()
            """,
        })
        findings = run_rule("D1", root)
        assert len(findings) == 1
        assert "time.time()" in findings[0].message

    def test_span_layer_allowlisted(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/obs/trace.py": """
                import time

                def now():
                    return time.perf_counter()
            """,
        })
        assert run_rule("D1", root) == []

    def test_unseeded_random_flagged_seeded_allowed(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/workloads.py": """
                import random

                def bad(edits):
                    random.shuffle(edits)

                def good(edits, seed):
                    rng = random.Random(seed)
                    rng.shuffle(edits)
            """,
        })
        findings = run_rule("D1", root)
        assert len(findings) == 1
        assert "random.shuffle" in findings[0].message

    def test_id_keys_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/api/network.py": """
                def cache_key(invariants):
                    return tuple(id(inv) for inv in invariants)
            """,
        })
        findings = run_rule("D1", root)
        assert len(findings) == 1
        assert "id()" in findings[0].message

    def test_set_iteration_in_serializer_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/delta.py": """
                class Report:
                    def to_dict(self):
                        return [str(p) for p in set(self.prefixes)]
            """,
        })
        findings = run_rule("D1", root)
        assert len(findings) == 1
        assert "unordered set" in findings[0].message

    def test_sorted_set_in_serializer_clean(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/delta.py": """
                class Report:
                    def to_dict(self):
                        return [str(p) for p in sorted(self.prefixes)]
            """,
        })
        assert run_rule("D1", root) == []

    def test_set_iteration_outside_serializer_clean(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/delta.py": """
                def spread(prefixes, extra):
                    for p in prefixes | {extra}:
                        yield p
            """,
        })
        assert run_rule("D1", root) == []

    def test_file_suppression(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/bench_extra.py": """
                # repro-lint: disable-file=D1
                import time

                def a():
                    return time.time()

                def b():
                    return time.monotonic()
            """,
        })
        assert run_rule("D1", root) == []


# -- S1: schema drift --------------------------------------------------------

SERIALIZE_STUB = """
    SCHEMA_VERSION = 1
    KNOWN_KINDS = {"widget"}

    def document(kind, payload):
        return {"schema_version": SCHEMA_VERSION, "kind": kind, **payload}

    def check_document(data, kind):
        pass
"""

WIDGET_OK = """
    from dataclasses import dataclass

    from repro.core import serialize

    @dataclass
    class Widget:
        name: str
        size: int

        def to_dict(self):
            return serialize.document("widget", {"name": self.name})

        @classmethod
        def from_dict(cls, data):
            serialize.check_document(data, "widget")
            return cls(data["name"], data["size"])
"""


class TestSchemaDrift:
    def _fixture(self, tmp_path, widget_src=WIDGET_OK):
        root = make_project(tmp_path, {
            "repro/core/serialize.py": SERIALIZE_STUB,
            "repro/widget.py": widget_src,
        })
        write_fingerprints(Project(root))
        return root

    def test_complete_serializer_clean(self, tmp_path):
        root = self._fixture(tmp_path)
        assert run_rule("S1", root) == []

    def test_missing_from_dict_flagged(self, tmp_path):
        root = self._fixture(tmp_path, """
            from repro.core import serialize

            class Widget:
                def to_dict(self):
                    return serialize.document("widget", {})
        """)
        findings = run_rule("S1", root)
        assert any("no from_dict inverse" in f.message for f in findings)

    def test_unregistered_kind_flagged(self, tmp_path):
        root = self._fixture(tmp_path, """
            from repro.core import serialize

            class Widget:
                def to_dict(self):
                    return serialize.document("gizmo", {})

                @classmethod
                def from_dict(cls, data):
                    serialize.check_document(data, "gizmo")
                    return cls()
        """)
        findings = run_rule("S1", root)
        assert any("unregistered kind 'gizmo'" in f.message for f in findings)

    def test_from_dict_not_checking_kind_flagged(self, tmp_path):
        root = self._fixture(tmp_path, """
            from repro.core import serialize

            class Widget:
                def to_dict(self):
                    return serialize.document("widget", {})

                @classmethod
                def from_dict(cls, data):
                    return cls()
        """)
        findings = run_rule("S1", root)
        assert any("does not validate kind" in f.message for f in findings)

    def test_register_kind_call_registers(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/serialize.py": SERIALIZE_STUB,
            "repro/widget.py": """
                from repro.core import serialize

                GIZMO = serialize.register_kind("gizmo")

                class Widget:
                    def to_dict(self):
                        return serialize.document("gizmo", {})

                    @classmethod
                    def from_dict(cls, data):
                        serialize.check_document(data, "gizmo")
                        return cls()
            """,
        })
        write_fingerprints(Project(root))
        assert run_rule("S1", root) == []

    def test_field_drift_flagged(self, tmp_path):
        root = self._fixture(tmp_path)
        # A field lands after the fingerprint was committed.
        widget = root / "src" / "repro" / "widget.py"
        widget.write_text(
            widget.read_text().replace(
                "size: int", "size: int\n    color: str"
            )
        )
        findings = run_rule("S1", root)
        assert len(findings) == 1
        assert "fields changed" in findings[0].message
        assert "update-fingerprints" in findings[0].message

    def test_missing_fingerprint_file_reported_once(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/serialize.py": SERIALIZE_STUB,
            "repro/widget.py": WIDGET_OK,
        })
        findings = run_rule("S1", root)
        assert len(findings) == 1
        assert "no SCHEMA_FINGERPRINTS.json" in findings[0].message


# -- H1: registry coverage ---------------------------------------------------

PIPELINE_STUB = """
    class DirtySet:
        ospf: set
        bgp_prefixes: set

        def merge(self, other):
            self.ospf |= other.ospf
            self.bgp_prefixes |= other.bgp_prefixes

    class RecomputePipeline:
        def run(self, dirty):
            for router in sorted(dirty.ospf):
                self.recompute(router)
            for prefix in sorted(dirty.bgp_prefixes):
                self.solve(prefix)
"""

# Same shape, plus an ``acl_spans`` axis nothing in the pipeline reads.
UNCONSUMED_PIPELINE_STUB = """
    class DirtySet:
        ospf: set
        bgp_prefixes: set
        acl_spans: list

        def merge(self, other):
            self.ospf |= other.ospf
            self.bgp_prefixes |= other.bgp_prefixes
            self.acl_spans += other.acl_spans

    class RecomputePipeline:
        def run(self, dirty):
            for router in sorted(dirty.ospf):
                self.recompute(router)
            for prefix in sorted(dirty.bgp_prefixes):
                self.solve(prefix)
"""

CHANGE_STUB = """
    class Edit:
        pass

    class LinkDown(Edit):
        pass

    class LinkUp(LinkDown):
        pass
"""


class TestRegistryCoverage:
    def test_covered_hierarchy_clean(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/change.py": CHANGE_STUB,
            "repro/core/pipeline.py": PIPELINE_STUB,
            "repro/core/handlers.py": """
                from repro.core.change import LinkDown
                from repro.core.handlers_registry import register_change_handler

                @register_change_handler(LinkDown)
                def handle_link(analyzer, edit, dirty):
                    dirty.ospf.add(edit.router)
            """,
        })
        # LinkUp rides on LinkDown's registration (MRO dispatch).
        assert run_rule("H1", root) == []

    def test_uncovered_edit_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/change.py": (
                CHANGE_STUB + "\n    class AclEdit(Edit):\n        pass\n"
            ),
            "repro/core/pipeline.py": PIPELINE_STUB,
            "repro/core/handlers.py": """
                from repro.core.change import LinkDown
                from repro.core.handlers_registry import register_change_handler

                @register_change_handler(LinkDown)
                def handle_link(analyzer, edit, dirty):
                    dirty.ospf.add(edit.router)
            """,
        })
        findings = run_rule("H1", root)
        assert len(findings) == 1
        assert "AclEdit" in findings[0].message
        assert "no registered change handler" in findings[0].message

    def test_unknown_axis_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/change.py": CHANGE_STUB,
            "repro/core/pipeline.py": PIPELINE_STUB,
            "repro/core/handlers.py": """
                from repro.core.change import LinkDown
                from repro.core.handlers_registry import register_change_handler

                @register_change_handler(LinkDown)
                def handle_link(analyzer, edit, dirty):
                    dirty.ospf_routers.add(edit.router)
            """,
        })
        findings = run_rule("H1", root)
        assert len(findings) == 1
        assert "unknown DirtySet axis 'ospf_routers'" in findings[0].message

    def test_unconsumed_axis_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/core/change.py": CHANGE_STUB,
            "repro/core/pipeline.py": UNCONSUMED_PIPELINE_STUB,
            "repro/core/handlers.py": """
                from repro.core.change import LinkDown
                from repro.core.handlers_registry import register_change_handler

                @register_change_handler(LinkDown)
                def handle_link(analyzer, edit, dirty):
                    dirty.acl_spans.append(edit.span)
            """,
        })
        # DirtySet.merge reads every field trivially; only the
        # recompute stages count as consumers, and they never read
        # acl_spans in this fixture.  Both the handler write and the
        # field declaration itself are flagged.
        findings = run_rule("H1", root)
        assert len(findings) == 2
        assert any("never consumes" in f.message for f in findings)
        assert any(
            "no recompute stage consumes" in f.message for f in findings
        )

    def test_declared_axis_without_consumer_flagged(self, tmp_path):
        # No handler even writes the dead axis: the declaration alone
        # is flagged — new DirtySet axes must be consumed by a stage.
        root = make_project(tmp_path, {
            "repro/core/change.py": CHANGE_STUB,
            "repro/core/pipeline.py": UNCONSUMED_PIPELINE_STUB,
            "repro/core/handlers.py": """
                from repro.core.change import LinkDown
                from repro.core.handlers_registry import register_change_handler

                @register_change_handler(LinkDown)
                def handle_link(analyzer, edit, dirty):
                    dirty.ospf.add(edit.router)
            """,
        })
        findings = run_rule("H1", root)
        assert len(findings) == 1
        assert "no recompute stage consumes" in findings[0].message
        assert "'acl_spans'" in findings[0].message


# -- M1: obs naming ----------------------------------------------------------


class TestObsNaming:
    def test_grammar_violation_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/obs/use.py": """
                def f(tracer):
                    with tracer.span("AnalyzeBatch"):
                        pass
            """,
        })
        findings = run_rule("M1", root)
        assert len(findings) == 1
        assert "name grammar" in findings[0].message

    def test_wall_time_metric_name_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/obs/use.py": """
                def f(metrics):
                    metrics.counter("pipeline.duration").inc(1)
            """,
        })
        findings = run_rule("M1", root)
        assert len(findings) == 1
        assert "wall-time quantity" in findings[0].message

    def test_wall_time_metric_value_flagged(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/obs/use.py": """
                import time

                def f(metrics, span):
                    metrics.counter("pipeline.runs").inc(span.duration)
                    metrics.gauge("pipeline.depth").set(time.perf_counter())
            """,
        })
        findings = run_rule("M1", root)
        assert len(findings) == 2
        assert all("wall time belongs to spans" in f.message for f in findings)

    def test_conforming_names_clean(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/obs/use.py": """
                def f(tracer, metrics, op):
                    with tracer.span("pipeline.igp"):
                        metrics.counter("pipeline.nodes_visited").inc(3)
                    with tracer.span(f"service.{op}"):
                        pass
            """,
        })
        # f-string names are dynamic and skipped by design.
        assert run_rule("M1", root) == []

    def test_non_obs_span_method_skipped(self, tmp_path):
        root = make_project(tmp_path, {
            "repro/net/interval.py": """
                def width(interval_set, lo, hi):
                    return interval_set.span(lo, hi)
            """,
        })
        assert run_rule("M1", root) == []


# -- baseline gate -----------------------------------------------------------

DIRTY_MODULE = {
    "repro/util.py": """
        import time

        def stamp():
            return time.time()
    """,
}


class TestBaselineGate:
    def test_new_finding_fails(self, tmp_path):
        root = make_project(tmp_path, DIRTY_MODULE)
        result = run_lint(root)
        assert not result.clean
        assert len(result.new) == 1
        assert result.baselined == [] and result.stale == []

    def test_baselined_finding_passes(self, tmp_path):
        root = make_project(tmp_path, DIRTY_MODULE)
        run_lint(root, update_baseline=True)
        result = run_lint(root)
        assert result.clean
        assert len(result.baselined) == 1 and result.new == []

    def test_baseline_does_not_cover_new_debt(self, tmp_path):
        root = make_project(tmp_path, DIRTY_MODULE)
        run_lint(root, update_baseline=True)
        util = root / "src" / "repro" / "util.py"
        util.write_text(
            util.read_text() + "\n\ndef stamp2():\n    return time.monotonic()\n"
        )
        result = run_lint(root)
        assert not result.clean
        assert len(result.new) == 1 and len(result.baselined) == 1

    def test_stale_entry_fails_shrink_only(self, tmp_path):
        root = make_project(tmp_path, DIRTY_MODULE)
        run_lint(root, update_baseline=True)
        # The fix lands: the finding disappears, so its baseline entry
        # must be deleted — stale entries are errors, never tolerated.
        (root / "src" / "repro" / "util.py").write_text(
            "def stamp():\n    return 0\n"
        )
        result = run_lint(root)
        assert not result.clean
        assert len(result.stale) == 1 and result.new == []
        # --update-baseline regenerates (shrinks) it back to clean.
        result = run_lint(root, update_baseline=True)
        assert result.clean

    def test_fingerprint_survives_line_shift(self, tmp_path):
        root = make_project(tmp_path, DIRTY_MODULE)
        run_lint(root, update_baseline=True)
        util = root / "src" / "repro" / "util.py"
        util.write_text("# a new leading comment\n" + util.read_text())
        result = run_lint(root)
        assert result.clean  # same finding, new line, same fingerprint


# -- lint-report document ----------------------------------------------------


class TestLintReport:
    def test_round_trip(self, tmp_path):
        root = make_project(tmp_path, DIRTY_MODULE)
        result = run_lint(root)
        document = result.to_dict()
        assert document["kind"] == "lint-report"
        restored = LintResult.from_dict(document)
        assert restored.to_dict() == document
        assert restored.clean == result.clean

    def test_document_is_byte_stable(self, tmp_path):
        root = make_project(tmp_path, DIRTY_MODULE)
        first = json.dumps(run_lint(root).to_dict(), sort_keys=True)
        second = json.dumps(run_lint(root).to_dict(), sort_keys=True)
        assert first == second


# -- CLI ---------------------------------------------------------------------


class TestLintCli:
    def test_exit_codes(self, tmp_path, capsys):
        root = make_project(tmp_path, DIRTY_MODULE)
        assert cli_main(["lint", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "1 new finding(s)" in out
        assert cli_main(["lint", "--root", str(root), "--update-baseline"]) == 0
        assert cli_main(["lint", "--root", str(root)]) == 0

    def test_json_envelope(self, tmp_path, capsys):
        root = make_project(tmp_path, DIRTY_MODULE)
        assert cli_main(["lint", "--root", str(root), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "lint-report"
        assert payload["result"]["clean"] is False
        assert len(payload["result"]["findings"]) == 1


# -- the repo lints itself ---------------------------------------------------


def test_repo_is_clean():
    """The committed tree passes its own gate (what CI enforces)."""
    result = run_lint(REPO_ROOT)
    assert result.new == [], "\n".join(str(f) for f in result.new)
    assert result.stale == []
