"""Config text format: round-tripping and parse errors."""

import pytest

from repro.config.acl import Acl, AclAction, AclRule
from repro.config.device import DeviceConfig, InterfaceConfig
from repro.config.routemap import (
    ClauseAction,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.config.routing import (
    BgpConfig,
    BgpNeighborConfig,
    OspfConfig,
    OspfInterfaceSettings,
    StaticRouteConfig,
)
from repro.config.text import (
    ConfigParseError,
    parse_configs,
    parse_device,
    serialize_configs,
    serialize_device,
)
from repro.net.addr import IPv4Address, Prefix
from repro.workloads.scenarios import internet2_bgp


def rich_device() -> DeviceConfig:
    """A device exercising every config feature."""
    config = DeviceConfig("r1")
    config.interfaces["eth0"] = InterfaceConfig(enabled=False, acl_in="GUARD")
    config.interfaces["eth1"] = InterfaceConfig(acl_out="GUARD")
    config.add_static_route(
        StaticRouteConfig(Prefix("10.9.0.0/16"), next_hop=IPv4Address("10.0.0.1"))
    )
    config.add_static_route(
        StaticRouteConfig(Prefix("10.8.0.0/16"), interface="eth1", admin_distance=5)
    )
    config.add_static_route(StaticRouteConfig(Prefix("10.7.0.0/16"), drop=True))
    config.ospf = OspfConfig(
        {
            "eth1": OspfInterfaceSettings(area=0, cost=10),
            "lo0": OspfInterfaceSettings(area=1, cost=1, passive=True),
            "eth2": OspfInterfaceSettings(area=0, cost=20, enabled=False),
        }
    )
    config.bgp = BgpConfig(
        asn=65001,
        router_id=IPv4Address("192.168.0.1"),
        redistribute_connected=True,
    )
    config.bgp.add_neighbor(
        BgpNeighborConfig(
            peer_ip=IPv4Address("10.0.0.1"),
            remote_asn=65002,
            import_policy="IMP",
            export_policy="EXP",
            next_hop_self=True,
        )
    )
    config.bgp.originated.append(Prefix("172.16.1.0/24"))
    config.acls["GUARD"] = Acl(
        "GUARD",
        [
            AclRule(
                AclAction.DENY,
                dst=Prefix("172.16.5.0/24"),
                src=Prefix("192.168.0.0/16"),
                proto=6,
                dport_lo=80,
                dport_hi=443,
            ),
            AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
        ],
    )
    config.prefix_lists["PL"] = PrefixList(
        "PL",
        [
            PrefixListEntry(prefix=Prefix("10.0.0.0/8"), ge=24, le=24),
            PrefixListEntry(prefix=Prefix("0.0.0.0/0"), le=32, permit=False),
        ],
    )
    config.route_maps["IMP"] = RouteMap(
        "IMP",
        [
            RouteMapClause(
                seq=10,
                match_prefix_list="PL",
                match_community=(65001, 100),
                set_local_pref=200,
                set_med=5,
                set_communities_add=frozenset({(65001, 666)}),
                set_communities_remove=frozenset({(65001, 100)}),
                prepend_count=2,
            ),
            RouteMapClause(seq=20, action=ClauseAction.DENY),
        ],
    )
    config.route_maps["EXP"] = RouteMap("EXP", [RouteMapClause(seq=10)])
    return config


class TestRoundTrip:
    def test_rich_device_round_trips(self):
        original = rich_device()
        text = serialize_device(original)
        parsed = parse_device(text)
        assert serialize_device(parsed) == text
        # Structural spot checks, not just text equality.
        assert parsed.interfaces["eth0"].enabled is False
        assert parsed.interfaces["eth0"].acl_in == "GUARD"
        assert len(parsed.static_routes) == 3
        assert parsed.ospf.interfaces["eth2"].enabled is False
        assert parsed.bgp.redistribute_connected
        neighbor = parsed.bgp.neighbors[IPv4Address("10.0.0.1")]
        assert neighbor.next_hop_self and neighbor.import_policy == "IMP"
        rule = parsed.acls["GUARD"].rules[0]
        assert rule.proto == 6 and rule.dport_hi == 443
        clause = parsed.route_maps["IMP"].sorted_clauses()[0]
        assert clause.set_communities_add == {(65001, 666)}
        assert clause.prepend_count == 2

    def test_whole_scenario_round_trips(self):
        scenario = internet2_bgp()
        text = serialize_configs(scenario.snapshot.configs)
        parsed = parse_configs(text)
        assert set(parsed) == set(scenario.snapshot.configs)
        assert serialize_configs(parsed) == text

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# header comment\n"
            "device r1\n"
            "\n"
            "  static 10.0.0.0/24 drop  # trailing comment\n"
        )
        config = parse_device(text)
        assert config.static_routes[0].drop


class TestParseErrors:
    def test_statement_outside_device(self):
        with pytest.raises(ConfigParseError, match="outside any device"):
            parse_configs("static 10.0.0.0/24 drop\n")

    def test_duplicate_device(self):
        with pytest.raises(ConfigParseError, match="duplicate device"):
            parse_configs("device a\ndevice a\n")

    def test_bad_static_target(self):
        with pytest.raises(ConfigParseError, match="static route target"):
            parse_configs("device a\n  static 10.0.0.0/24 nowhere\n")

    def test_bad_neighbor_line(self):
        with pytest.raises(ConfigParseError):
            parse_configs(
                "device a\n  bgp 1 router-id 1.1.1.1\n    neighbor 10.0.0.1\n"
            )

    def test_acl_rule_requires_dst(self):
        with pytest.raises(ConfigParseError, match="needs a dst"):
            parse_configs("device a\n  acl X\n    permit src 10.0.0.0/8\n")

    def test_route_map_statement_outside_clause(self):
        with pytest.raises(ConfigParseError, match="outside a clause"):
            parse_configs(
                "device a\n  route-map M\n    set local-pref 10\n"
            )

    def test_error_carries_line_number(self):
        try:
            parse_configs("device a\n  bogus statement here\n")
        except ConfigParseError as error:
            assert error.line_number == 2
        else:
            pytest.fail("expected ConfigParseError")

    def test_parse_device_requires_single_block(self):
        with pytest.raises(ValueError, match="exactly one device"):
            parse_device("device a\ndevice b\n")
