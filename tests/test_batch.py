"""Batched multi-edit analysis: equivalence, registry, and IR tests.

The load-bearing contract of PR 5: for any sequence of changes,
``analyze_batch`` (apply every edit first, union the dirty sets, run
one recompute pass) must produce a report equal to the sequential
composition of per-change ``analyze`` calls — byte-identical
``to_dict()`` output modulo timings/counters — and must agree with the
:class:`~repro.core.snapshot_diff.SnapshotDiff` ground truth on the
combined change.  The property is exercised across every change kind
in :mod:`repro.workloads.changes`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.config.acl import AclAction, AclRule
from repro.config.text import serialize_configs
from repro.controlplane.simulation import simulate
from repro.core.analyzer import DifferentialNetworkAnalyzer, batch_label
from repro.core.change import (
    AddAclRule,
    BindAcl,
    Change,
    Edit,
    LinkDown,
    SetOspfCost,
)
from repro.core.change_text import (
    ChangeParseError,
    parse_change,
    parse_change_batch,
    serialize_change_batch,
)
from repro.core.delta import compose_reports
from repro.core.handlers import (
    HandlerEntry,
    handler_for,
    register_change_handler,
    registered_change_handlers,
)
from repro.core.pipeline import DirtySet
from repro.core.planner import PlannerConfig
from repro.core.snapshot import serialize_topology
from repro.core.snapshot_diff import SnapshotDiff, diff_states
from repro.net.addr import Prefix
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import internet2_bgp, ring_ospf


def _stripped(report) -> str:
    """Canonical JSON of a report minus timing/work statistics."""
    document = report.to_dict()
    document.pop("timings")
    document.pop("counters")
    return json.dumps(document, sort_keys=True)


def _assert_batch_equivalent(scenario, changes: list[Change]) -> None:
    """The full batched-analysis contract for one change sequence."""
    label = "equivalence"
    sequential = DifferentialNetworkAnalyzer(scenario.snapshot.clone())
    reports = [sequential.analyze(change) for change in changes]
    composed = compose_reports(reports, label=label)

    batched_analyzer = DifferentialNetworkAnalyzer(scenario.snapshot.clone())
    batched = batched_analyzer.analyze_batch(changes, label=label)

    # Byte-identical JSON documents, modulo timing/work stats.
    assert _stripped(batched) == _stripped(composed), (
        f"batched != sequential composition for "
        f"{[c.label for c in changes]}"
    )
    # Work accounting: the batch records its size.
    assert batched.counters["edits_batched"] == sum(
        len(change.edits) for change in changes
    )
    # Ground truth: SnapshotDiff of the combined change.
    combined = Change(
        edits=[edit for change in changes for edit in change.edits],
        label=label,
    )
    oracle = SnapshotDiff(scenario.snapshot.clone()).analyze(combined)
    assert batched.behavior_signature() == oracle.behavior_signature()
    # Both analyzers converge to the same post-batch state.
    drift = diff_states(sequential.state, batched_analyzer.state)
    assert drift.is_empty(), f"state drift:\n{drift.summary()}"


class TestBatchSequentialEquivalence:
    """analyze_batch == sequential composition, per change kind."""

    def test_link_failures(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=31)
        first, _up1 = gen.random_link_failure()
        second, _up2 = gen.random_link_failure()
        while second.label == first.label:
            second, _up2 = gen.random_link_failure()
        _assert_batch_equivalent(fat_tree_k4_scenario, [first, second])

    def test_fail_recover_pair_cancels(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=32)
        down, up = gen.random_link_failure()
        sequential = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone()
        )
        composed = compose_reports(
            [sequential.analyze(down), sequential.analyze(up)], label="noop"
        )
        batched = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone()
        ).analyze_batch([down, up], label="noop")
        assert batched.is_empty()
        assert composed.is_empty()
        assert _stripped(batched) == _stripped(composed)

    def test_interface_flaps(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=33)
        shutdown, _enable = gen.random_interface_flap()
        other, _ = gen.random_interface_flap()
        _assert_batch_equivalent(fat_tree_k4_scenario, [shutdown, other])

    def test_static_routes(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=34)
        adds = [gen.random_static_route()[0] for _ in range(3)]
        _assert_batch_equivalent(fat_tree_k4_scenario, adds)

    def test_static_batches(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=35)
        add_batch, remove_batch = gen.static_batch(4)
        _assert_batch_equivalent(
            fat_tree_k4_scenario, [add_batch, remove_batch]
        )

    def test_ospf_costs(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=36)
        _assert_batch_equivalent(
            fat_tree_k4_scenario,
            [gen.random_ospf_cost(), gen.random_ospf_cost()],
        )

    def test_acl_blocks(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=37)
        block, unblock = gen.random_acl_block()
        other_block, _ = gen.random_acl_block()
        _assert_batch_equivalent(fat_tree_k4_scenario, [block, other_block])

    def test_bgp_session_flap(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=38)
        teardown, restore = gen.random_session_flap()
        _assert_batch_equivalent(internet2_scenario, [teardown, restore])

    def test_bgp_prefix_flaps(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=39)
        announce, _withdraw = gen.random_prefix_flap()
        other, _ = gen.random_prefix_flap()
        _assert_batch_equivalent(internet2_scenario, [announce, other])

    def test_bgp_local_pref_flip_with_outage(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=40)
        flip = gen.dual_homed_pref_flip(100, 200)
        down, _up = gen.random_link_failure()
        _assert_batch_equivalent(internet2_scenario, [flip, down])

    def test_mixed_k8_changeset(self, fat_tree_k4_scenario):
        """The acceptance shape: a k=8 mixed batch, byte-identical."""
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=41)
        down, up = gen.random_link_failure()
        shutdown, _enable = gen.random_interface_flap()
        add1, _ = gen.random_static_route()
        add2, _ = gen.random_static_route()
        cost = gen.random_ospf_cost()
        block, _unblock = gen.random_acl_block()  # 3 edits
        changes = [down, shutdown, add1, add2, cost, block]
        assert sum(len(c.edits) for c in changes) == 8
        _assert_batch_equivalent(fat_tree_k4_scenario, changes)


class TestWhatIfBatch:
    def test_report_matches_committed_batch(self, ring8_scenario):
        gen = ChangeGenerator(ring8_scenario, seed=51)
        down, _up = gen.random_link_failure()
        add, _remove = gen.random_static_route()
        changes = [down, add]
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        speculative = analyzer.what_if_batch(changes, label="L")
        committed = DifferentialNetworkAnalyzer(
            ring8_scenario.snapshot.clone()
        ).analyze_batch(changes, label="L")
        assert _stripped(speculative) == _stripped(committed)

    def test_rolls_back_exactly(self, ring8_scenario):
        base = ring8_scenario.snapshot.clone()
        base_state = simulate(base, precompute_reachability=True)
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        gen = ChangeGenerator(ring8_scenario, seed=52)
        down, _up = gen.random_link_failure()
        block, _unblock = gen.random_acl_block()
        analyzer.what_if_batch([down, block])
        assert serialize_configs(analyzer.snapshot.configs) == (
            serialize_configs(base.configs)
        )
        assert serialize_topology(analyzer.snapshot.topology) == (
            serialize_topology(base.topology)
        )
        drift = diff_states(base_state, analyzer.state)
        assert drift.is_empty(), f"drift:\n{drift.summary()}"

    def test_rolls_back_on_apply_error(self, ring8_scenario):
        base = ring8_scenario.snapshot.clone()
        base_state = simulate(base, precompute_reachability=True)
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        good = Change.of(LinkDown("r0", "r1"), label="fine")
        bad = Change.of(LinkDown("r0", "no_such_router"), label="broken")
        with pytest.raises(Exception):
            analyzer.what_if_batch([good, bad])
        drift = diff_states(base_state, analyzer.state)
        assert drift.is_empty()

    def test_failed_committed_batch_still_bumps_generation(
        self, ring8_scenario
    ):
        """A committed application that fails mid-batch may have
        mutated state (no fork, no rollback), so caches keyed on
        ``generation`` — e.g. the campaign runner's pickled base —
        must see it move.  Forked failures roll back and must not."""
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        start = analyzer.generation
        bad = Change.of(
            LinkDown("r0", "r1"), LinkDown("r0", "no_such_router")
        )
        with pytest.raises(Exception):
            analyzer.analyze_batch([bad])
        assert analyzer.generation == start + 1
        with pytest.raises(Exception):
            analyzer.what_if_batch([bad])
        assert analyzer.generation == start + 1

    def test_mid_fork_atom_split_through_batch(self):
        """The PR-1 regression shape, run as one what_if_batch.

        An ACL on an unaligned /26 splits a host-subnet atom and a
        link failure then dirties the whole subnet inside the same
        fork.  Rollback must not reinstate cache entries keyed by the
        fork-created atoms, and a committed analysis afterwards must
        still match the baseline.
        """
        scenario = ring_ospf(8)
        base = scenario.snapshot.clone()
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot.clone())
        subnet = scenario.fabric.host_subnets["r2"][0]
        sub26 = Prefix(subnet.first + 64, 26)
        acl_block = Change.of(
            AddAclRule(
                "r1",
                "T",
                AclRule(action=AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ),
            AddAclRule(
                "r1", "T", AclRule(action=AclAction.DENY, dst=sub26), position=0
            ),
            BindAcl("r1", "eth1", "T", "out"),
            label="block /26 behind r1",
        )
        down = Change.of(LinkDown("r4", "r5"), label="fail r4--r5")
        analyzer.what_if_batch([acl_block, down])
        live = set(analyzer.state.dataplane.atom_table.atoms())
        stale = analyzer.state.reachability.cached_atoms() - live
        assert not stale, f"stale atoms survived rollback: {sorted(stale)}"
        committed = analyzer.analyze(down)
        reference = SnapshotDiff(base.clone()).analyze(down)
        assert (
            committed.behavior_signature() == reference.behavior_signature()
        )


# -- handler registry --------------------------------------------------------


@dataclass(frozen=True)
class _SilenceOspf(Edit):
    """Test-only change kind: stop OSPF on every interface of a router."""

    router: str

    def apply(self, snapshot) -> None:
        config = snapshot.config(self.router)
        assert config.ospf is not None
        for settings in config.ospf.interfaces.values():
            settings.enabled = False

    def describe(self) -> str:
        return f"{self.router}: silence ospf"


class TestHandlerRegistry:
    def test_builtins_registered(self):
        registry = registered_change_handlers()
        assert LinkDown in registry
        assert SetOspfCost in registry
        assert isinstance(registry[LinkDown], HandlerEntry)

    def test_mro_resolution_covers_subclasses(self):
        from repro.core.change import LinkUp

        assert LinkUp not in registered_change_handlers()
        assert handler_for(LinkUp) is handler_for(LinkDown)

    def test_unregistered_type_raises(self):
        @dataclass(frozen=True)
        class Unknown(Edit):
            pass

        with pytest.raises(TypeError, match="register_change_handler"):
            handler_for(Unknown)
        analyzer = DifferentialNetworkAnalyzer(ring_ospf(4).snapshot)
        with pytest.raises(TypeError, match="Unknown"):
            analyzer.analyze(Change.of(Unknown()))

    def test_entry_repr_names_type_and_function(self):
        entry = handler_for(LinkDown)
        text = repr(entry)
        assert "LinkDown" in text and "change-handler" in text

    def test_custom_change_kind_end_to_end(self):
        """A workload-registered change kind analyzes correctly
        without any analyzer edits (oracle: SnapshotDiff)."""

        @register_change_handler(_SilenceOspf)
        def _handle_silence(analyzer, edit, dirty) -> None:
            snapshot = analyzer.snapshot
            ospf = snapshot.config(edit.router).ospf
            interfaces = list(ospf.interfaces) if ospf is not None else []
            edit.apply(snapshot)
            dirty.ospf.merge(
                analyzer._ospf.refresh_router_adverts(edit.router)
            )
            for interface in interfaces:
                peer = snapshot.topology.interface_peer(
                    edit.router, interface
                )
                if peer is not None:
                    dirty.ospf.merge(
                        analyzer._ospf.refresh_pair(edit.router, peer.router)
                    )

        scenario = ring_ospf(8)
        change = Change.of(_SilenceOspf("r3"), label="silence r3")
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot.clone())
        report = analyzer.analyze(change)
        reference = SnapshotDiff(scenario.snapshot.clone()).analyze(change)
        assert not report.is_empty()
        assert report.behavior_signature() == reference.behavior_signature()
        # And it forks like any built-in kind.
        speculative = DifferentialNetworkAnalyzer(
            scenario.snapshot.clone()
        ).what_if(change)
        assert (
            speculative.behavior_signature() == report.behavior_signature()
        )


# -- DirtySet IR -------------------------------------------------------------


class TestDirtySet:
    def test_merge_unions_everything(self):
        first = DirtySet()
        first.spf_sources.add(("r1", 0))
        first.touched_routers.add("r1")
        first.acl_spans.append((0, 10))
        second = DirtySet(all_bgp_dirty=True)
        second.spf_sources.add(("r2", 0))
        second.advert_prefixes.setdefault(0, set()).add(Prefix("10.0.0.0/24"))
        second.bgp_prefixes.add(Prefix("10.9.0.0/24"))
        second.bgp_sessions.add(("r1", "r2"))
        second.bgp_adj_rib.add(("r2", "r1"))
        second.bgp_policy.add("r3")
        merged = first.merge(second)
        assert merged is first
        assert first.spf_sources == {("r1", 0), ("r2", 0)}
        assert first.touched_routers == {"r1"}
        assert first.bgp_prefixes == {Prefix("10.9.0.0/24")}
        assert first.bgp_sessions == {("r1", "r2")}
        assert first.bgp_adj_rib == {("r2", "r1")}
        assert first.bgp_policy == {"r3"}
        assert first.acl_spans == [(0, 10)]
        assert first.all_bgp_dirty
        assert Prefix("10.0.0.0/24") in first.advert_prefixes[0]

    def test_empty_and_repr(self):
        dirty = DirtySet()
        assert dirty.is_empty()
        assert repr(dirty) == "DirtySet(empty)"
        dirty.touched_routers.update({"a", "b"})
        dirty.bgp_sessions.add(("a", "b"))
        assert not dirty.is_empty()
        text = repr(dirty)
        assert "2 routers" in text and "1 session pairs" in text


# -- script bridge -----------------------------------------------------------


class TestScriptBatchBridge:
    def test_single_stanza_matches_parse_change(self):
        text = "link down r0 r1\nospf cost r0 eth1 20\n"
        batch = parse_change_batch(text, label="script")
        single = parse_change(text, label="script")
        assert len(batch) == 1
        assert batch[0].edits == single.edits
        assert batch[0].label == "script"

    def test_separators_split_and_label(self):
        text = (
            "link down r0 r1\n"
            "---\n"
            "# comment\n"
            "ospf cost r0 eth1 20\n"
            "---\n"
            "---\n"
            "static add r2 10.9.0.0/24 drop\n"
        )
        batch = parse_change_batch(text, label="plan")
        assert [len(change.edits) for change in batch] == [1, 1, 1]
        assert [change.label for change in batch] == [
            "plan#1",
            "plan#2",
            "plan#3",
        ]

    def test_empty_script_yields_one_empty_change(self):
        batch = parse_change_batch("# nothing\n---\n", label="empty")
        assert len(batch) == 1
        assert batch[0].edits == []

    def test_parse_change_rejects_separator(self):
        with pytest.raises(ChangeParseError):
            parse_change("link down r0 r1\n---\nlink up r0 r1\n")

    def test_batch_round_trip(self):
        text = "link down r0 r1\n---\nospf cost r0 eth1 20\n"
        batch = parse_change_batch(text, label="rt")
        rendered = serialize_change_batch(batch)
        again = parse_change_batch(rendered, label="rt")
        assert [c.edits for c in again] == [c.edits for c in batch]

    def test_batch_label_helper(self):
        assert batch_label([Change(label="a")]) == "a"
        assert batch_label([Change(label="")]) == "differential"
        assert batch_label([Change(label="a"), Change(label="b")]) == "a + b"
        assert (
            batch_label([Change(label="a"), Change(label="")])
            == "batch(2 changes)"
        )


# -- facade ------------------------------------------------------------------


class TestNetworkBatchFacade:
    def test_apply_accepts_sequences(self, fat_tree_k4_scenario):
        from repro.api import ChangeSet, Network

        gen = ChangeGenerator(fat_tree_k4_scenario, seed=61)
        down, up = gen.random_link_failure()
        network = Network.from_snapshot(fat_tree_k4_scenario.snapshot.clone())
        preview = network.preview([down, up], label="flap")
        assert preview.is_empty()
        report = network.apply(
            [ChangeSet("d").add(*down.edits), ChangeSet("u").add(*up.edits)],
            label="flap",
        )
        assert report.is_empty()
        assert report.counters["edits_batched"] == 2
        assert report.label == "flap"

    def test_apply_single_change_unchanged(self, fat_tree_k4_scenario):
        from repro.api import Network

        gen = ChangeGenerator(fat_tree_k4_scenario, seed=62)
        down, _up = gen.random_link_failure()
        network = Network.from_snapshot(fat_tree_k4_scenario.snapshot.clone())
        preview = network.preview(down)
        reference = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone()
        ).what_if(down)
        assert preview.behavior_signature() == reference.behavior_signature()
        assert preview.label == down.label


class TestBatchProvenance:
    """Provenance rides the PR-5 equivalence contract.

    The full per-kind byte-identity matrix (all 19 edit kinds, batched
    vs sequential-composition attribution) lives in
    ``tests/test_provenance.py``; here we pin the two interactions with
    the batching machinery itself.
    """

    def test_provenance_flag_leaves_report_unchanged(
        self, fat_tree_k4_scenario
    ):
        """provenance=True must not perturb any non-provenance byte."""
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=63)
        down, _up = gen.random_link_failure()
        add, _remove = gen.random_static_route()
        changes = [down, add]
        analyzer = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone()
        )
        plain = analyzer.what_if_batch(changes)
        traced = analyzer.what_if_batch(changes, provenance=True)
        traced_doc = traced.to_dict()
        assert traced_doc.pop("provenance")["kind"] == "provenance"
        plain_doc = plain.to_dict()
        for doc in (plain_doc, traced_doc):
            doc.pop("timings")
            doc.pop("counters")
        assert json.dumps(plain_doc, sort_keys=True) == json.dumps(
            traced_doc, sort_keys=True
        )

    def test_compose_reports_renumbers_edit_ids(self, fat_tree_k4_scenario):
        """Sequential composition offsets each report's edit table so
        ids stay dense and in application order across the batch."""
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=64)
        down, _up = gen.random_link_failure()
        add, _remove = gen.random_static_route()
        analyzer = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone()
        )
        with analyzer.fork():
            reports = [
                analyzer.analyze(change, provenance=True)
                for change in (down, add)
            ]
        composed = compose_reports(reports, label="pair")
        record = composed.provenance
        assert record is not None
        assert [info.edit_id for info in record.edits] == [0, 1]
        assert {info.kind for info in record.edits} == {
            "LinkDown",
            "AddStaticRoute",
        }
        # Every recorded cause refers to a renumbered, registered id.
        for ids in list(record.rib_causes.values()) + list(
            record.fib_causes.values()
        ):
            assert ids <= record.all_ids()


def _scoped_vs_full_rescan(scenario, changes: list[Change]):
    """Stage-granularity oracle: pair-scoped session rediscovery must
    be byte-identical to a full ``discover_sessions`` rebuild.

    Returns ``(scoped_report, full_report)`` so callers can add
    work-count assertions on ``bgp_sessions_rescanned``.

    Both analyzers pin ``full_scope_ratio`` above 1 so the planner can
    never short-circuit to full resimulation (which re-solves every
    prefix and would wash out the per-stage work counters) — the
    comparison isolates pair-scoped rediscovery against the full
    ``discover_sessions`` rebuild.
    """
    scoped = DifferentialNetworkAnalyzer(
        scenario.snapshot.clone(),
        planner=PlannerConfig(full_scope_ratio=1.1),
    )
    full = DifferentialNetworkAnalyzer(
        scenario.snapshot.clone(),
        planner=PlannerConfig(full_scope_ratio=1.1, scope_sessions=False),
    )
    scoped_report = scoped.analyze_batch(changes, label="stage-oracle")
    full_report = full.analyze_batch(changes, label="stage-oracle")
    assert _stripped(scoped_report) == _stripped(full_report), (
        f"scoped session rediscovery diverges from full rescan for "
        f"{[c.label for c in changes]}"
    )
    # The converged session lists agree element-for-element (canonical
    # sort order is part of the contract).
    assert scoped.state.bgp_sessions == full.state.bgp_sessions
    drift = diff_states(scoped.state, full.state)
    assert drift.is_empty(), f"state drift:\n{drift.summary()}"
    return scoped_report, full_report


class TestBgpStageGranularity:
    """Per-edit-kind oracles for the staged BGP session discovery.

    For every edit kind that deposits on the ``bgp_sessions`` axis,
    the pair-scoped rediscovery path must produce the same report and
    converged state as rebuilding the session list from scratch —
    while validating strictly fewer directed neighbor entries.
    """

    def test_link_down_scoped_rescan(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=81)
        down, _up = gen.random_link_failure()
        scoped, full = _scoped_vs_full_rescan(internet2_scenario, [down])
        assert (
            scoped.counters["bgp_sessions_rescanned"]
            < full.counters["bgp_sessions_rescanned"]
        )

    def test_link_down_up_scoped_rescan(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=82)
        down, up = gen.random_link_failure()
        _scoped_vs_full_rescan(internet2_scenario, [down, up])

    def test_interface_shutdown_scoped_rescan(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=83)
        shutdown, _enable = gen.random_interface_flap()
        scoped, full = _scoped_vs_full_rescan(
            internet2_scenario, [shutdown]
        )
        assert (
            scoped.counters["bgp_sessions_rescanned"]
            < full.counters["bgp_sessions_rescanned"]
        )

    def test_interface_flap_scoped_rescan(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=84)
        shutdown, enable = gen.random_interface_flap()
        _scoped_vs_full_rescan(internet2_scenario, [shutdown, enable])

    def test_remove_neighbor_scoped_rescan(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=85)
        teardown, _restore = gen.random_session_flap()
        scoped, full = _scoped_vs_full_rescan(
            internet2_scenario, [teardown]
        )
        assert 0 < scoped.counters["bgp_sessions_rescanned"]
        assert (
            scoped.counters["bgp_sessions_rescanned"]
            < full.counters["bgp_sessions_rescanned"]
        )

    def test_session_flap_scoped_rescan(self, internet2_scenario):
        """AddBgpNeighbor rides in via the restore half of the flap."""
        gen = ChangeGenerator(internet2_scenario, seed=86)
        teardown, restore = gen.random_session_flap()
        _scoped_vs_full_rescan(internet2_scenario, [teardown, restore])

    def test_local_pref_edit_scoped_rescan(self, internet2_scenario):
        """SetLocalPref deposits on bgp_adj_rib, not bgp_sessions —
        no session is rescanned on either path."""
        gen = ChangeGenerator(internet2_scenario, seed=87)
        flip = gen.dual_homed_pref_flip(100, 200)
        scoped, full = _scoped_vs_full_rescan(internet2_scenario, [flip])
        assert scoped.counters["bgp_sessions_rescanned"] == 0
        assert full.counters["bgp_sessions_rescanned"] == 0


class TestBatchPlanner:
    """The planner's crossover/split decisions: deterministic,
    provenance-sound, and equivalence-preserving in every mode."""

    def test_plan_is_deterministic(self, internet2_scenario):
        analyzer = DifferentialNetworkAnalyzer(
            internet2_scenario.snapshot.clone()
        )
        gen = ChangeGenerator(internet2_scenario, seed=90)
        # IGP edits estimate zero dirty prefixes: always scoped.
        cost_batch = [gen.random_ospf_cost()]
        first = analyzer.planner.plan(cost_batch)
        second = analyzer.planner.plan(cost_batch)
        assert first == second  # BatchPlan is a frozen dataclass
        assert first.mode == "scoped"
        assert first.total_prefixes > 0
        # BGP-surface batches plan identically on repeat too, whatever
        # side of the crossover the estimate lands on.
        teardown, _restore = gen.random_session_flap()
        flip = gen.dual_homed_pref_flip(100, 200)
        bgp_batch = [teardown, flip]
        assert analyzer.planner.plan(bgp_batch) == analyzer.planner.plan(
            bgp_batch
        )

    def test_provenance_defers_full_mode(self, internet2_scenario):
        """Attribution needs scoped cause bookkeeping: with provenance
        on, the planner never picks full mode, even past crossover."""
        analyzer = DifferentialNetworkAnalyzer(
            internet2_scenario.snapshot.clone(),
            planner=PlannerConfig(full_scope_ratio=0.0),
        )
        gen = ChangeGenerator(internet2_scenario, seed=91)
        teardown, _restore = gen.random_session_flap()
        assert analyzer.planner.plan([teardown]).mode == "full"
        plan = analyzer.planner.plan([teardown], provenance=True)
        assert plan.mode == "scoped"
        assert "provenance" in plan.reason

    def test_add_neighbor_estimates_certain_full(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=92)
        teardown, restore = gen.random_session_flap()
        analyzer = DifferentialNetworkAnalyzer(
            internet2_scenario.snapshot.clone()
        )
        analyzer.analyze(teardown)
        plan = analyzer.planner.plan([restore])
        assert plan.mode == "full"
        assert plan.estimated_prefixes == plan.total_prefixes

    def test_full_mode_byte_identical(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=93)
        teardown, _restore = gen.random_session_flap()
        flip = gen.dual_homed_pref_flip(100, 200)
        changes = [teardown, flip]
        # full_scope_ratio > 1 disables the crossover; 0.0 forces it.
        scoped = DifferentialNetworkAnalyzer(
            internet2_scenario.snapshot.clone(),
            planner=PlannerConfig(full_scope_ratio=1.1),
        )
        full = DifferentialNetworkAnalyzer(
            internet2_scenario.snapshot.clone(),
            planner=PlannerConfig(full_scope_ratio=0.0),
        )
        scoped_report = scoped.analyze_batch(changes, label="crossover")
        full_report = full.analyze_batch(changes, label="crossover")
        assert _stripped(scoped_report) == _stripped(full_report)
        drift = diff_states(scoped.state, full.state)
        assert drift.is_empty(), f"state drift:\n{drift.summary()}"
        assert full.metrics.counters()["planner.full"] == 1
        assert scoped.metrics.counters()["planner.scoped"] == 1

    def test_split_mode_matches_unsplit(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=94)
        adds = [gen.random_static_route()[0] for _ in range(3)]
        plain = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone()
        )
        split = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone(),
            planner=PlannerConfig(split_max_edits=2),
        )
        plan = split.planner.plan(adds)
        assert plan.mode == "split"
        assert plan.chunk_sizes == (2, 1)
        plain_report = plain.analyze_batch(adds, label="chunked")
        split_report = split.analyze_batch(adds, label="chunked")
        assert _stripped(plain_report) == _stripped(split_report)
        drift = diff_states(plain.state, split.state)
        assert drift.is_empty(), f"state drift:\n{drift.summary()}"
        # One split decision, then one scoped pass per chunk.
        counters = split.metrics.counters()
        assert counters["planner.split"] == 1
        assert counters["planner.scoped"] == 2

    def test_split_mode_preserves_provenance(self, fat_tree_k4_scenario):
        """Chunk composition renumbers edit ids densely, so a split
        batch's provenance is byte-identical to the unsplit one."""
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=95)
        down, _up = gen.random_link_failure()
        add1, _ = gen.random_static_route()
        add2, _ = gen.random_static_route()
        changes = [down, add1, add2]
        plain = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone()
        )
        split = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone(),
            planner=PlannerConfig(split_max_edits=1),
        )
        plain_report = plain.analyze_batch(
            changes, label="chunked", provenance=True
        )
        split_report = split.analyze_batch(
            changes, label="chunked", provenance=True
        )
        assert _stripped(plain_report) == _stripped(split_report)
        record = split_report.provenance
        assert record is not None
        assert [info.edit_id for info in record.edits] == [0, 1, 2]
