"""Atom table: partitioning, splits/merges, reference counting."""

import pytest
from hypothesis import given, strategies as st

from repro.dataplane.atoms import SPAN_HI, SPAN_LO, Atom, AtomTable
from repro.net.addr import Prefix


def assert_partitions(table: AtomTable) -> None:
    """Atoms must tile the whole space, in order, without gaps."""
    atoms = list(table.atoms())
    assert atoms[0].lo == SPAN_LO
    assert atoms[-1].hi == SPAN_HI
    for left, right in zip(atoms, atoms[1:]):
        assert left.hi == right.lo


class TestBasics:
    def test_fresh_table_single_atom(self):
        table = AtomTable()
        assert table.num_atoms() == 1
        assert_partitions(table)

    def test_register_splits(self):
        table = AtomTable()
        splits = table.register(100, 200)
        assert table.num_atoms() == 3
        assert len(splits) == 2
        assert_partitions(table)

    def test_unregister_merges_back(self):
        table = AtomTable()
        table.register(100, 200)
        merges = table.unregister(100, 200)
        assert table.num_atoms() == 1
        assert len(merges) == 2
        assert_partitions(table)

    def test_refcounting_keeps_shared_points(self):
        table = AtomTable()
        table.register(100, 200)
        table.register(100, 300)  # shares point 100
        table.unregister(100, 200)
        # Point 100 still referenced; 200 gone.
        atoms = list(table.atoms())
        assert Atom(100, 300) in atoms
        assert_partitions(table)

    def test_unregister_unknown_point_rejected(self):
        table = AtomTable()
        with pytest.raises(ValueError):
            table.unregister(100, 200)

    def test_atom_containing(self):
        table = AtomTable()
        table.register(100, 200)
        assert table.atom_containing(150) == Atom(100, 200)
        assert table.atom_containing(99) == Atom(SPAN_LO, 100)
        with pytest.raises(ValueError):
            table.atom_containing(-1)

    def test_atoms_overlapping(self):
        table = AtomTable()
        table.register(100, 200)
        table.register(300, 400)
        overlapping = table.atoms_overlapping(150, 350)
        assert overlapping == [Atom(100, 200), Atom(200, 300), Atom(300, 400)]
        assert table.atoms_overlapping(50, 50) == []

    def test_atoms_overlapping_prefix(self):
        table = AtomTable()
        prefix = Prefix("10.0.0.0/8")
        table.register_prefix(prefix)
        lo, hi = prefix.interval()
        assert table.atoms_overlapping_prefix(prefix) == [Atom(lo, hi)]

    def test_split_reports_parent_and_halves(self):
        table = AtomTable()
        (parent, halves), = table.register(100, SPAN_HI)
        assert parent == Atom(SPAN_LO, SPAN_HI)
        assert halves == [Atom(SPAN_LO, 100), Atom(100, SPAN_HI)]

    def test_span_endpoints_never_split(self):
        table = AtomTable()
        assert table.register(SPAN_LO, SPAN_HI) == []
        assert table.num_atoms() == 1


_intervals = st.tuples(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
).filter(lambda t: t[0] < t[1])


@given(st.lists(_intervals, max_size=20))
def test_partition_invariant_under_registration(intervals):
    table = AtomTable()
    for lo, hi in intervals:
        table.register(lo, hi)
    assert_partitions(table)
    # Every registered boundary is an atom boundary.
    boundaries = {a.lo for a in table.atoms()} | {a.hi for a in table.atoms()}
    for lo, hi in intervals:
        assert lo in boundaries and hi in boundaries


@given(st.lists(_intervals, min_size=1, max_size=15), st.randoms())
def test_register_unregister_round_trip(intervals, rng):
    table = AtomTable()
    for lo, hi in intervals:
        table.register(lo, hi)
    shuffled = list(intervals)
    rng.shuffle(shuffled)
    for lo, hi in shuffled:
        table.unregister(lo, hi)
    assert table.num_atoms() == 1
    assert_partitions(table)


@given(st.lists(st.tuples(_intervals, st.booleans()), max_size=30))
def test_mixed_stream_stays_partitioned(operations):
    table = AtomTable()
    live: list[tuple[int, int]] = []
    for (lo, hi), register in operations:
        if register or not live:
            table.register(lo, hi)
            live.append((lo, hi))
        else:
            victim = live.pop()
            table.unregister(*victim)
        assert_partitions(table)
