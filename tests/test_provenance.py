"""Causal provenance: edit→delta attribution, event log, explain.

The PR-7 contracts:

- ``analyze_batch(..., provenance=True)`` attributes every RIB/FIB
  change, ACL span, reachability segment, and violation to the edit
  ids that (may have) caused it.
- For batches whose edits have disjoint dirty footprints — including
  every single-change batch — the provenance document is
  **byte-identical** between the batched analysis and the sequential
  composition of per-change analyses (``compose_reports``).  The
  property is exercised across all 19 built-in edit kinds.
- For overlapping footprints attribution stays a sound superset:
  every edit that actually caused a delta is in its cause set.
- The structured event log is append-only, deterministic, and merges
  byte-identically across process boundaries.
"""

from __future__ import annotations

import json

import pytest

from repro.config.routemap import RouteMapClause
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import (
    AddRouteMapClause,
    Change,
    DisableOspfInterface,
    EnableInterface,
    EnableOspfInterface,
    LinkDown,
    LinkUp,
    RemoveRouteMapClause,
    SetOspfCost,
    ShutdownInterface,
)
from repro.core.delta import DeltaReport, compose_reports
from repro.core.serialize import SchemaError
from repro.obs import EventLog
from repro.obs.provenance import EditInfo, ProvenanceRecord
from repro.workloads.changes import ChangeGenerator


def _stripped(report) -> str:
    """Canonical JSON of a report minus timing/work statistics."""
    document = report.to_dict()
    document.pop("timings")
    document.pop("counters")
    return json.dumps(document, sort_keys=True)


def _assert_provenance_equivalent(snapshot, changes, setup=None):
    """Batched provenance == sequential composition, byte-identical."""
    batched_analyzer = DifferentialNetworkAnalyzer(snapshot.clone())
    if setup is not None:
        batched_analyzer.analyze(setup)
    batched = batched_analyzer.what_if_batch(changes, provenance=True)

    sequential = DifferentialNetworkAnalyzer(snapshot.clone())
    if setup is not None:
        sequential.analyze(setup)
    with sequential.fork():
        reports = [
            sequential.analyze(change, provenance=True) for change in changes
        ]
    composed = compose_reports(reports, label=batched.label)

    assert batched.provenance is not None
    assert composed.provenance is not None
    assert _stripped(batched) == _stripped(composed), (
        f"provenance drift for {[c.label for c in changes]}"
    )
    # The edit table is the batch, in application order.
    assert [info.kind for info in batched.provenance.edits] == [
        type(edit).__name__ for change in changes for edit in change.edits
    ]
    return batched


# -- all 19 edit kinds through the full provenance pipeline ------------------


def _kind_case(kind: str, fat_tree, internet2):
    """(snapshot, setup change or None, changes) for one edit kind."""
    gen = ChangeGenerator(fat_tree, seed=71)
    bgp_gen = ChangeGenerator(internet2, seed=72)
    if kind == "LinkDown":
        return fat_tree.snapshot, None, [
            Change.of(LinkDown("agg0_0", "core0"), label="down")
        ]
    if kind == "LinkUp":
        down = Change.of(LinkDown("agg0_0", "core0"), label="down")
        return fat_tree.snapshot, down, [
            Change.of(LinkUp("agg0_0", "core0"), label="up")
        ]
    if kind == "ShutdownInterface":
        return fat_tree.snapshot, None, [
            Change.of(ShutdownInterface("edge0_0", "eth0"), label="shut")
        ]
    if kind == "EnableInterface":
        shut = Change.of(ShutdownInterface("edge0_0", "eth0"), label="shut")
        return fat_tree.snapshot, shut, [
            Change.of(EnableInterface("edge0_0", "eth0"), label="enable")
        ]
    if kind == "AddStaticRoute":
        add, _remove = gen.random_static_route(router="edge0_0")
        return fat_tree.snapshot, None, [add]
    if kind == "RemoveStaticRoute":
        add, remove = gen.random_static_route(router="edge0_0")
        return fat_tree.snapshot, add, [remove]
    if kind == "SetOspfCost":
        return fat_tree.snapshot, None, [
            Change.of(SetOspfCost("edge0_0", "eth0", 33), label="cost")
        ]
    if kind == "DisableOspfInterface":
        return fat_tree.snapshot, None, [
            Change.of(DisableOspfInterface("edge0_0", "eth0"), label="no-ospf")
        ]
    if kind == "EnableOspfInterface":
        disable = Change.of(
            DisableOspfInterface("edge0_0", "eth0"), label="no-ospf"
        )
        return fat_tree.snapshot, disable, [
            Change.of(EnableOspfInterface("edge0_0", "eth0"), label="ospf")
        ]
    if kind in ("AddAclRule", "BindAcl"):
        block, _unblock = gen.random_acl_block()
        return fat_tree.snapshot, None, [block]
    if kind == "RemoveAclRule":
        block, unblock = gen.random_acl_block()
        return fat_tree.snapshot, block, [unblock]
    if kind == "AnnouncePrefix":
        announce, _withdraw = bgp_gen.random_prefix_flap()
        return internet2.snapshot, None, [announce]
    if kind == "WithdrawPrefix":
        announce, withdraw = bgp_gen.random_prefix_flap()
        return internet2.snapshot, announce, [withdraw]
    if kind == "RemoveBgpNeighbor":
        teardown, _restore = bgp_gen.random_session_flap()
        return internet2.snapshot, None, [teardown]
    if kind == "AddBgpNeighbor":
        teardown, restore = bgp_gen.random_session_flap()
        return internet2.snapshot, teardown, [restore]
    if kind == "SetLocalPref":
        return internet2.snapshot, None, [bgp_gen.dual_homed_pref_flip()]
    if kind in ("AddRouteMapClause", "RemoveRouteMapClause"):
        router = next(
            name
            for name, config in sorted(internet2.snapshot.configs.items())
            if config.route_maps
        )
        map_name = sorted(internet2.snapshot.configs[router].route_maps)[0]
        clause = RouteMapClause(seq=95, set_local_pref=77)
        add = Change.of(
            AddRouteMapClause(router, map_name, clause), label="clause+"
        )
        if kind == "AddRouteMapClause":
            return internet2.snapshot, None, [add]
        remove = Change.of(
            RemoveRouteMapClause(router, map_name, 95), label="clause-"
        )
        return internet2.snapshot, add, [remove]
    raise AssertionError(f"unhandled kind {kind}")


ALL_EDIT_KINDS = [
    "LinkDown",
    "LinkUp",
    "ShutdownInterface",
    "EnableInterface",
    "AddStaticRoute",
    "RemoveStaticRoute",
    "SetOspfCost",
    "EnableOspfInterface",
    "DisableOspfInterface",
    "AnnouncePrefix",
    "WithdrawPrefix",
    "AddBgpNeighbor",
    "RemoveBgpNeighbor",
    "SetLocalPref",
    "AddRouteMapClause",
    "RemoveRouteMapClause",
    "AddAclRule",
    "RemoveAclRule",
    "BindAcl",
]


class TestAttributionByteIdentity:
    """Batched == sequential-composition provenance, per edit kind."""

    @pytest.mark.parametrize("kind", ALL_EDIT_KINDS)
    def test_kind(self, kind, fat_tree_k4_scenario, internet2_scenario):
        snapshot, setup, changes = _kind_case(
            kind, fat_tree_k4_scenario, internet2_scenario
        )
        report = _assert_provenance_equivalent(snapshot, changes, setup)
        assert any(info.kind == kind for info in report.provenance.edits)

    def test_disjoint_static_routes_across_changes(
        self, fat_tree_k4_scenario
    ):
        """Two statics on different routers: disjoint footprints, so
        cross-change attribution is exact and byte-identical."""
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=73)
        first, _ = gen.random_static_route(router="edge0_0")
        second, _ = gen.random_static_route(router="edge3_1")
        report = _assert_provenance_equivalent(
            fat_tree_k4_scenario.snapshot, [first, second]
        )
        record = report.provenance
        # Each router's new entry is pinned to exactly its own edit.
        assert all(
            len(ids) == 1 for ids in record.fib_causes.values()
        )

    def test_disjoint_prefix_announcements(self, internet2_scenario):
        """Two announcements of different prefixes: per-prefix BGP
        attribution stays exact across the batch."""
        gen = ChangeGenerator(internet2_scenario, seed=74)
        first, _ = gen.random_prefix_flap()
        second, _ = gen.random_prefix_flap()
        _assert_provenance_equivalent(
            internet2_scenario.snapshot, [first, second]
        )

    def test_overlapping_batch_is_sound_superset(self, fat_tree_k4_scenario):
        """Two link failures sharing a router have overlapping SPF
        footprints — attribution coarsens to the dirty-axis grain but
        must stay a sound superset of the per-change ground truth (and
        the non-provenance report stays byte-identical)."""
        changes = [
            Change.of(LinkDown("agg2_0", "edge2_0"), label="d1"),
            Change.of(LinkDown("agg2_0", "core0"), label="d2"),
        ]
        snapshot = fat_tree_k4_scenario.snapshot
        batched = DifferentialNetworkAnalyzer(snapshot.clone()).what_if_batch(
            changes, provenance=True
        )
        sequential = DifferentialNetworkAnalyzer(snapshot.clone())
        with sequential.fork():
            reports = [
                sequential.analyze(change, provenance=True)
                for change in changes
            ]
        composed = compose_reports(reports, label=batched.label)
        # Everything except provenance is byte-identical (PR-5 contract).
        batched_doc = batched.to_dict()
        composed_doc = composed.to_dict()
        for doc in (batched_doc, composed_doc):
            doc.pop("timings"), doc.pop("counters"), doc.pop("provenance")
        assert json.dumps(batched_doc, sort_keys=True) == json.dumps(
            composed_doc, sort_keys=True
        )
        # Same edit table; batched cause sets contain the ground truth.
        assert batched.provenance.edits == composed.provenance.edits
        for key, ids in composed.provenance.rib_causes.items():
            assert ids <= batched.provenance.rib_causes[key], key
        for key, ids in composed.provenance.fib_causes.items():
            assert ids <= batched.provenance.fib_causes[key], key

    def test_batched_provenance_is_deterministic(self, ring8_scenario):
        gen = ChangeGenerator(ring8_scenario, seed=75)
        down, _up = gen.random_link_failure()
        add, _remove = gen.random_static_route()
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        first = analyzer.what_if_batch([down, add], provenance=True)
        second = analyzer.what_if_batch([down, add], provenance=True)
        assert _stripped(first) == _stripped(second)

    def test_provenance_document_round_trips(self, ring8_scenario):
        gen = ChangeGenerator(ring8_scenario, seed=76)
        down, _up = gen.random_link_failure()
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        report = analyzer.what_if_batch([down], provenance=True)
        # Through the report...
        again = DeltaReport.from_dict(report.to_dict())
        assert _stripped(again) == _stripped(report)
        # ...and standalone.
        document = report.provenance.to_dict(report.reach_segments)
        restored = ProvenanceRecord.from_dict(document)
        assert restored.to_dict() == document
        with pytest.raises(SchemaError):
            ProvenanceRecord.from_dict({**document, "schema_version": 99})

    def test_without_provenance_no_document_key(self, ring8_scenario):
        gen = ChangeGenerator(ring8_scenario, seed=77)
        down, _up = gen.random_link_failure()
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        report = analyzer.what_if(down)
        assert report.provenance is None
        assert "provenance" not in report.to_dict()


# -- DeltaReport.why / attribute --------------------------------------------


class TestWhyAndAttribute:
    @pytest.fixture(scope="class")
    def failed_ring(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        report = analyzer.what_if_batch(
            [Change.of(LinkDown("r0", "r1"), label="fail r0--r1")],
            provenance=True,
        )
        return report

    def test_why_fib_entry(self, failed_ring):
        router, prefix = next(
            (router, prefix)
            for router, per_router in sorted(
                failed_ring.fib_changes.items()
            )
            for prefix in per_router
        )
        causes = failed_ring.why((router, prefix))
        assert [info.edit_id for info in causes] == [0]
        assert causes[0].kind == "LinkDown"

    def test_why_segment(self, failed_ring):
        segment = failed_ring.reach_segments[0]
        causes = failed_ring.why(segment)
        assert causes and all(isinstance(c, EditInfo) for c in causes)

    def test_why_unchanged_entry_is_empty(self, failed_ring):
        assert failed_ring.why(("r4", "10.255.255.0/24")) == []

    def test_why_requires_provenance(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        report = analyzer.what_if(Change.of(LinkDown("r0", "r1")))
        with pytest.raises(ValueError, match="provenance"):
            report.why(("r0", "10.0.0.0/31"))

    def test_attribute_lists_deltas_and_segments(self, failed_ring):
        attribution = failed_ring.attribute(0)
        assert attribution["edit"]["kind"] == "LinkDown"
        assert attribution["fib"]
        assert attribution["segments"]
        with pytest.raises(KeyError):
            failed_ring.attribute(7)


# -- the structured event log ------------------------------------------------


class TestEventLog:
    def test_append_assigns_monotonic_seq(self):
        log = EventLog()
        log.span("analyze.batch", label="x")
        log.metric("pipeline.spf", 3)
        log.provenance(edit_id=0, kind="LinkDown")
        assert [record["seq"] for record in log] == [0, 1, 2]
        assert [record["type"] for record in log] == [
            "span", "metric", "provenance",
        ]

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="event type"):
            EventLog().append("bogus", {})

    def test_absorb_renumbers_densely(self):
        first = EventLog()
        first.span("a")
        second = EventLog()
        second.span("b")
        second.metric("m", 1)
        first.absorb(second.to_payload())
        assert [record["seq"] for record in first] == [0, 1, 2]
        assert [record["data"].get("name") for record in first] == [
            "a", "b", "m",
        ]

    def test_jsonl_round_trip_byte_stable(self):
        log = EventLog()
        log.span("analyze.batch", label="x", changes=2)
        log.provenance(edit_id=0, kind="LinkDown", detail="d")
        text = log.to_jsonl()
        again = EventLog.from_jsonl(text)
        assert again.to_jsonl() == text
        document = log.to_dict()
        assert EventLog.from_dict(document).to_dict() == document
        with pytest.raises(SchemaError):
            EventLog.from_dict({**document, "schema_version": 99})

    def test_analyzer_emits_only_with_provenance(self, ring8_scenario):
        log = EventLog()
        analyzer = DifferentialNetworkAnalyzer(
            ring8_scenario.snapshot.clone(), events=log
        )
        change = Change.of(LinkDown("r0", "r1"), label="fail")
        analyzer.what_if(change)
        assert len(log) == 0  # provenance off: silent
        analyzer.what_if(change, provenance=True)
        assert len(log) > 0
        types = {record["type"] for record in log}
        assert types == {"span", "metric", "provenance"}
        # Deterministic payloads only: repeat appends the same slice.
        first = list(log.to_payload())
        log.clear()
        analyzer.what_if(change, provenance=True)
        assert log.to_payload() == first


# -- unit: ProvenanceRecord ---------------------------------------------------


class TestProvenanceRecord:
    def test_register_and_describe(self):
        record = ProvenanceRecord("batch")
        first = record.register_edit("LinkDown", "link down a -- b", "c1")
        second = record.register_edit("SetOspfCost", "cost 5", "")
        assert (first, second) == (0, 1)
        assert record.all_ids() == {0, 1}
        assert record.describe({1, 0}) == [
            "#0 LinkDown: link down a -- b (c1)",
            "#1 SetOspfCost: cost 5",
        ]
        with pytest.raises(KeyError):
            record.edit(2)

    def test_entry_causes_prefers_fib(self):
        record = ProvenanceRecord()
        record.register_edit("A", "a")
        record.register_edit("B", "b")
        record.record_rib("r1", "10.0.0.0/24", {0})
        record.record_fib("r1", "10.0.0.0/24", (100, 200), {1})
        assert record.entry_causes("r1", "10.0.0.0/24") == {1}
        record.drop_fib("r1", "10.0.0.0/24")
        assert record.entry_causes("r1", "10.0.0.0/24") == {0}
        record.drop_rib("r1", "10.0.0.0/24")
        assert record.entry_causes("r1", "10.0.0.0/24") == set()

    def test_causes_over_unions_overlaps(self):
        record = ProvenanceRecord()
        for kind in "ABC":
            record.register_edit(kind, kind.lower())
        record.record_fib("r1", "p1", (0, 100), {0})
        record.record_fib("r2", "p2", (200, 300), {1})
        record.record_acl_span(250, 260, {2})
        assert record.causes_over(50, 60) == {0}
        assert record.causes_over(90, 210) == {0, 1}
        assert record.causes_over(255, 256) == {1, 2}
        assert record.causes_over(500, 600) == set()

    def test_absorb_edits_offsets(self):
        first = ProvenanceRecord()
        first.register_edit("A", "a")
        second = ProvenanceRecord()
        second.register_edit("B", "b")
        offset = first.absorb_edits(second)
        assert offset == 1
        assert [info.kind for info in first.edits] == ["A", "B"]


# -- campaign provenance ------------------------------------------------------


class TestCampaignProvenance:
    def test_outcome_causes_attribute_violations(self, ring8_scenario):
        from repro.api import Network
        from repro.campaign.scenarios import all_single_link_failures

        network = Network.from_snapshot(ring8_scenario.snapshot.clone())
        batch = all_single_link_failures(ring8_scenario)[:3]
        report = network.campaign(
            batch, invariants=["blackhole-freedom"], provenance=True
        )
        assert len(report.events) > 0
        for outcome in report.outcomes:
            assert outcome.causes is not None
            assert len(outcome.causes["edits"]) == 1
            for violation in outcome.causes["violations"]:
                assert violation["edits"] == [0]

    def test_provenance_off_keeps_payloads_lean(self, ring8_scenario):
        from repro.api import Network
        from repro.campaign.scenarios import all_single_link_failures

        network = Network.from_snapshot(ring8_scenario.snapshot.clone())
        batch = all_single_link_failures(ring8_scenario)[:2]
        report = network.campaign(batch)
        assert len(report.events) == 0
        for outcome in report.outcomes:
            assert outcome.causes is None and outcome.events is None
        document = report.to_dict()
        assert "events" not in document
        assert all("causes" not in o for o in document["outcomes"])


# -- repro explain ------------------------------------------------------------


class TestExplainCli:
    @pytest.fixture()
    def demo(self, tmp_path):
        from repro.api import Network

        network = Network.generate("ring", size=6)
        directory = tmp_path / "snap"
        network.save(str(directory))
        script = tmp_path / "change.dna"
        script.write_text("link down r0 r1\n")
        return str(directory), str(script)

    def test_live_summary_and_entry_query(self, demo, capsys):
        from repro.cli import main

        snapshot, script = demo
        assert main(["explain", snapshot, script]) == 0
        out = capsys.readouterr().out
        assert "1 edits" in out and "LinkDown" in out
        assert main(
            ["explain", snapshot, script, "--dst", "172.16.3.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "because of" in out and "#0 LinkDown" in out

    def test_saved_document_round_trip(self, demo, tmp_path, capsys):
        from repro.cli import main

        snapshot, script = demo
        saved = str(tmp_path / "prov.json")
        assert main(
            ["explain", snapshot, script, "--provenance-out", saved]
        ) == 0
        capsys.readouterr()
        assert main(["explain", "--from", saved, "--edit", "0", "--json"]) == 0
        from repro.core.serialize import check_envelope

        answer = check_envelope(json.loads(capsys.readouterr().out))
        assert answer["kind"] == "explain-answer"
        assert answer["edit"]["edit"]["kind"] == "LinkDown"
        assert answer["edit"]["fib"]

    def test_explain_never_commits(self, demo):
        from repro.api import Network
        from repro.cli import main

        snapshot, script = demo
        before = Network.load(snapshot).state.dataplane.stats()
        assert main(["explain", snapshot, script]) == 0
        assert Network.load(snapshot).state.dataplane.stats() == before

    def test_from_report_without_provenance_errors(self, demo, tmp_path):
        from repro.cli import main

        snapshot, script = demo
        report_path = tmp_path / "report.json"
        report_path.write_text(
            json.dumps({"kind": "delta-report", "schema_version": 1})
        )
        with pytest.raises(SystemExit, match="without"):
            main(["explain", "--from", str(report_path)])

    def test_analyze_provenance_artifacts(self, demo, tmp_path, capsys):
        from repro.cli import main

        snapshot, script = demo
        prov = str(tmp_path / "p.json")
        events = str(tmp_path / "e.jsonl")
        metrics = str(tmp_path / "m.json")
        assert main(
            [
                "analyze", snapshot, script, "--json",
                "--provenance-out", prov,
                "--events-out", events,
                "--metrics-out", metrics,
            ]
        ) == 0
        from repro.core.serialize import check_envelope

        report_doc = check_envelope(json.loads(capsys.readouterr().out))
        assert report_doc["kind"] == "delta-report"
        assert report_doc["provenance"]["kind"] == "provenance"
        assert json.loads(open(prov).read())["kind"] == "provenance"
        assert json.loads(open(metrics).read())["kind"] == "metrics"
        with open(events) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert [r["seq"] for r in records] == list(range(len(records)))

    def test_analyze_json_profile_emits_both(self, demo, capsys):
        """--profile --json emits the delta report AND the span tree."""
        from repro.cli import main

        snapshot, script = demo
        assert main(["analyze", snapshot, script, "--json", "--profile"]) == 0
        text = capsys.readouterr().out.strip()
        decoder = json.JSONDecoder()
        documents = []
        while text:
            document, index = decoder.raw_decode(text)
            documents.append(document)
            text = text[index:].lstrip()
        # Both stdout documents ride the uniform --json envelope.
        assert [d["kind"] for d in documents] == ["delta-report", "span-trace"]
        assert documents[1]["result"]["spans"]
