"""Connected/static derivation, RIB selection, and OSPF routes."""

import pytest

from repro.config.routing import OspfInterfaceSettings, StaticRouteConfig
from repro.controlplane.connected import (
    AddressIndex,
    connected_routes,
    resolve_static,
    static_routes,
)
from repro.controlplane.ospf import (
    OspfConfigError,
    build_ospf_state,
    ospf_routes_for_source,
)
from repro.controlplane.rib import DROP_NEXT_HOP, NextHop, Rib, Route
from repro.core.change import LinkDown
from repro.core.snapshot import Snapshot
from repro.net.addr import IPv4Address, Prefix
from repro.workloads.scenarios import fat_tree_ospf, line_static, ring_ospf


@pytest.fixture()
def line3():
    return line_static(3)


class TestConnected:
    def test_up_interfaces_produce_routes(self, line3):
        routes = connected_routes(line3.snapshot, "r1")
        # Two p2p /31s + loopback /32 + host /24.
        assert len(routes) == 4
        host = line3.fabric.host_subnets["r1"][0]
        assert host in routes
        assert routes[host].protocol == "connected"
        assert routes[host].admin_distance == 0

    def test_downed_link_removes_route(self, line3):
        snapshot = line3.snapshot.clone()
        LinkDown("r0", "r1").apply(snapshot)
        before = connected_routes(line3.snapshot, "r1")
        after = connected_routes(snapshot, "r1")
        assert len(before) - len(after) == 1

    def test_shutdown_interface_removes_route(self, line3):
        snapshot = line3.snapshot.clone()
        snapshot.config("r1").ensure_interface("host0").enabled = False
        routes = connected_routes(snapshot, "r1")
        host = line3.fabric.host_subnets["r1"][0]
        assert host not in routes


class TestStatic:
    def test_next_hop_resolution(self, line3):
        snapshot = line3.snapshot
        index = AddressIndex(snapshot)
        connected = connected_routes(snapshot, "r0")
        peer = snapshot.topology.interface_peer("r0", "eth1")
        static = StaticRouteConfig(Prefix("10.99.0.0/16"), next_hop=peer.address)
        route = resolve_static(snapshot, "r0", static, connected, index)
        assert route is not None
        hop = next(iter(route.next_hops))
        assert hop.neighbor == "r1"
        assert hop.ip == peer.address

    def test_unresolvable_next_hop_not_installed(self, line3):
        snapshot = line3.snapshot
        index = AddressIndex(snapshot)
        connected = connected_routes(snapshot, "r0")
        static = StaticRouteConfig(
            Prefix("10.99.0.0/16"), next_hop=IPv4Address("203.0.113.1")
        )
        assert resolve_static(snapshot, "r0", static, connected, index) is None

    def test_interface_static(self, line3):
        snapshot = line3.snapshot
        index = AddressIndex(snapshot)
        connected = connected_routes(snapshot, "r0")
        static = StaticRouteConfig(Prefix("10.99.0.0/16"), interface="eth1")
        route = resolve_static(snapshot, "r0", static, connected, index)
        assert route is not None
        assert next(iter(route.next_hops)).neighbor == "r1"

    def test_null_route(self, line3):
        snapshot = line3.snapshot
        index = AddressIndex(snapshot)
        static = StaticRouteConfig(Prefix("10.99.0.0/16"), drop=True)
        route = resolve_static(snapshot, "r0", static, {}, index)
        assert route.next_hops == frozenset({DROP_NEXT_HOP})

    def test_floating_static_lowest_distance_wins(self, line3):
        snapshot = line3.snapshot.clone()
        config = snapshot.config("r0")
        config.static_routes.clear()
        config.add_static_route(
            StaticRouteConfig(Prefix("10.99.0.0/16"), drop=True, admin_distance=200)
        )
        config.add_static_route(
            StaticRouteConfig(Prefix("10.99.0.0/16"), interface="eth1")
        )
        index = AddressIndex(snapshot)
        connected = connected_routes(snapshot, "r0")
        routes = static_routes(snapshot, "r0", connected, index)
        assert routes[Prefix("10.99.0.0/16")].admin_distance == 1


class TestRib:
    def make_route(self, protocol: str, ad: int, metric: int = 0) -> Route:
        return Route(
            prefix=Prefix("10.0.0.0/24"),
            protocol=protocol,
            admin_distance=ad,
            metric=metric,
            next_hops=frozenset({NextHop(interface="eth0")}),
        )

    def test_admin_distance_selection(self):
        rib = Rib("r")
        rib.install(self.make_route("ospf", 110))
        rib.install(self.make_route("static", 1))
        assert rib.best(Prefix("10.0.0.0/24")).protocol == "static"

    def test_withdraw_falls_back(self):
        rib = Rib("r")
        rib.install(self.make_route("ospf", 110))
        rib.install(self.make_route("static", 1))
        assert rib.withdraw(Prefix("10.0.0.0/24"), "static")
        assert rib.best(Prefix("10.0.0.0/24")).protocol == "ospf"
        assert not rib.withdraw(Prefix("10.0.0.0/24"), "static")

    def test_best_excluding(self):
        rib = Rib("r")
        rib.install(self.make_route("bgp", 20))
        rib.install(self.make_route("ospf", 110))
        assert rib.best(Prefix("10.0.0.0/24")).protocol == "bgp"
        assert (
            rib.best_excluding(Prefix("10.0.0.0/24"), frozenset({"bgp"})).protocol
            == "ospf"
        )

    def test_len_counts_all_protocols(self):
        rib = Rib("r")
        rib.install(self.make_route("ospf", 110))
        rib.install(self.make_route("static", 1))
        assert len(rib) == 2


class TestOspfRoutes:
    def test_ring_metrics(self):
        scenario = ring_ospf(6)
        state = build_ospf_state(scenario.snapshot)
        routes = ospf_routes_for_source(state, "r0")
        # r3's host subnet is 3 hops away; cost 10 per p2p hop plus the
        # advertised passive-interface cost (1).
        target = scenario.fabric.host_subnets["r3"][0]
        assert routes[target].metric == 31

    def test_ring_ecmp_on_opposite_node(self):
        scenario = ring_ospf(6)
        state = build_ospf_state(scenario.snapshot)
        routes = ospf_routes_for_source(state, "r0")
        target = scenario.fabric.host_subnets["r3"][0]
        assert len(routes[target].next_hops) == 2  # both ring directions

    def test_fat_tree_cross_pod_ecmp(self):
        scenario = fat_tree_ospf(4)
        state = build_ospf_state(scenario.snapshot)
        routes = ospf_routes_for_source(state, "edge0_0")
        target = scenario.fabric.host_subnets["edge1_0"][0]
        # Two aggs reachable first hop, full bisection behind them.
        assert len(routes[target].next_hops) == 2

    def test_own_subnets_not_in_ospf_routes(self):
        scenario = ring_ospf(4)
        state = build_ospf_state(scenario.snapshot)
        routes = ospf_routes_for_source(state, "r0")
        own = scenario.fabric.host_subnets["r0"][0]
        assert own not in routes

    def test_cost_validation(self):
        scenario = ring_ospf(4)
        snapshot = scenario.snapshot.clone()
        snapshot.config("r0").ospf.interfaces["eth0"] = OspfInterfaceSettings(cost=0)
        with pytest.raises(OspfConfigError):
            build_ospf_state(snapshot)

    def test_passive_interface_advertised_not_adjacent(self):
        scenario = ring_ospf(4)
        state = build_ospf_state(scenario.snapshot)
        graph = state.graphs[0]
        # host/lo interfaces are passive: they advertise but never
        # appear as graph edges (ring has exactly 2 neighbors each).
        for router in ("r0", "r1", "r2", "r3"):
            assert len(graph.successors(router)) == 2


class TestMultiArea:
    def build(self) -> Snapshot:
        """r0 -(area1)- r1 -(area0)- r2 -(area2)- r3; hosts on r0/r3."""
        from repro.topology.generators import line

        fabric = line(4)
        snapshot = Snapshot(topology=fabric.topology)
        areas = {("r0", "eth1"): 1, ("r1", "eth0"): 1,
                 ("r1", "eth1"): 0, ("r2", "eth0"): 0,
                 ("r2", "eth1"): 2, ("r3", "eth0"): 2}
        for router in ("r0", "r1", "r2", "r3"):
            config = snapshot.config(router)
            from repro.config.routing import OspfConfig

            config.ospf = OspfConfig()
            device = snapshot.topology.router(router)
            for interface in device.interfaces.values():
                area = areas.get((router, interface.name))
                if area is None:
                    # host/lo interfaces: passive in the router's
                    # primary area.
                    area = {"r0": 1, "r1": 0, "r2": 0, "r3": 2}[router]
                    config.ospf.interfaces[interface.name] = OspfInterfaceSettings(
                        area=area, cost=1, passive=True
                    )
                else:
                    config.ospf.interfaces[interface.name] = OspfInterfaceSettings(
                        area=area, cost=10
                    )
        self.fabric = fabric
        return snapshot

    def test_inter_area_route_exists(self):
        snapshot = self.build()
        state = build_ospf_state(snapshot)
        assert len(state.areas()) == 3
        routes = ospf_routes_for_source(state, "r0")
        target = self.fabric.host_subnets["r3"][0]
        assert target in routes
        # 3 hops of cost 10 plus advertised cost 1.
        assert routes[target].metric == 31

    def test_backbone_router_sees_leaf_areas(self):
        snapshot = self.build()
        state = build_ospf_state(snapshot)
        routes = ospf_routes_for_source(state, "r1")
        assert self.fabric.host_subnets["r0"][0] in routes
        assert self.fabric.host_subnets["r3"][0] in routes

    def test_abr_identification(self):
        snapshot = self.build()
        state = build_ospf_state(snapshot)
        assert state.abrs(1) == ["r1"]
        assert state.abrs(2) == ["r2"]
