"""Dynamic SPF vs. from-scratch Dijkstra (the incremental-SPF oracle)."""

import random

import pytest

from repro.controlplane.ispf import DynamicSpf
from repro.controlplane.rib import NextHop
from repro.controlplane.spf import INFINITY, SpfGraph, dijkstra, first_hops


def nh(u: str, v: str) -> frozenset[NextHop]:
    return frozenset({NextHop(interface=f"{u}:{v}", neighbor=v)})


def assert_agrees(dynamic: DynamicSpf) -> None:
    """Dynamic state must equal a fresh Dijkstra in every respect."""
    dist, parents = dijkstra(dynamic.graph, dynamic.source)
    assert dict(dynamic.dist) == dist
    got_parents = {
        node: frozenset(p) for node, p in dynamic.parents.items() if node in dist and p
    }
    ref_parents = {node: frozenset(p) for node, p in parents.items() if p}
    assert got_parents == ref_parents
    ref_fh = first_hops(dynamic.graph, dynamic.source, dist, parents)
    got_fh = {node: v for node, v in dynamic.first_hops().items() if node in dist}
    assert got_fh == ref_fh


def chain(n: int) -> SpfGraph:
    graph = SpfGraph()
    for i in range(n - 1):
        graph.set_edge(f"n{i}", f"n{i + 1}", 1, nh(f"n{i}", f"n{i + 1}"))
        graph.set_edge(f"n{i + 1}", f"n{i}", 1, nh(f"n{i + 1}", f"n{i}"))
    return graph


class TestTargetedUpdates:
    def test_removal_disconnects_suffix(self):
        graph = chain(5)
        dynamic = DynamicSpf(graph, "n0")
        graph.remove_edge("n2", "n3")
        changed = dynamic.edge_increased("n2", "n3")
        assert {"n3", "n4"} <= changed
        assert dynamic.distance("n4") == INFINITY
        assert_agrees(dynamic)

    def test_removal_off_tree_is_noop(self):
        graph = chain(4)
        graph.set_edge("n3", "n0", 100, nh("n3", "n0"))  # never used by n0
        dynamic = DynamicSpf(graph, "n0")
        graph.remove_edge("n3", "n0")
        assert dynamic.edge_increased("n3", "n0") == set()
        assert_agrees(dynamic)

    def test_insert_creates_shortcut(self):
        graph = chain(5)
        dynamic = DynamicSpf(graph, "n0")
        graph.set_edge("n0", "n4", 1, nh("n0", "n4"))
        changed = dynamic.edge_decreased("n0", "n4")
        assert "n4" in changed
        assert dynamic.distance("n4") == 1
        assert_agrees(dynamic)

    def test_equal_cost_insert_adds_parent_only(self):
        graph = SpfGraph()
        graph.set_edge("a", "b", 1, nh("a", "b"))
        graph.set_edge("a", "c", 1, nh("a", "c"))
        graph.set_edge("b", "d", 1, nh("b", "d"))
        dynamic = DynamicSpf(graph, "a")
        graph.set_edge("c", "d", 1, nh("c", "d"))
        changed = dynamic.edge_decreased("c", "d")
        assert changed == {"d"}
        assert dynamic.parents["d"] == {"b", "c"}
        assert_agrees(dynamic)

    def test_ecmp_member_removal_keeps_distance(self):
        graph = SpfGraph()
        for mid in ("b", "c"):
            graph.set_edge("a", mid, 1, nh("a", mid))
            graph.set_edge(mid, "d", 1, nh(mid, "d"))
        dynamic = DynamicSpf(graph, "a")
        graph.remove_edge("b", "d")
        changed = dynamic.edge_increased("b", "d")
        assert "d" in changed
        assert dynamic.distance("d") == 2
        assert dynamic.first_hops()["d"] == nh("a", "c")
        assert_agrees(dynamic)

    def test_cost_increase_reroutes(self):
        graph = SpfGraph()
        graph.set_edge("a", "b", 1, nh("a", "b"))
        graph.set_edge("a", "c", 5, nh("a", "c"))
        graph.set_edge("c", "b", 1, nh("c", "b"))
        dynamic = DynamicSpf(graph, "a")
        graph.set_edge("a", "b", 10, nh("a", "b"))
        dynamic.edge_increased("a", "b")
        assert dynamic.distance("b") == 6
        assert_agrees(dynamic)

    def test_update_into_source_ignored(self):
        graph = chain(3)
        dynamic = DynamicSpf(graph, "n0")
        graph.set_edge("n2", "n0", 1, nh("n2", "n0"))
        assert dynamic.edge_decreased("n2", "n0") == set()
        assert_agrees(dynamic)

    def test_affected_by(self):
        graph = chain(4)
        dynamic = DynamicSpf(graph, "n0")
        assert dynamic.affected_by("n1", "n2")
        assert not dynamic.affected_by("n2", "n1")

    def test_rebuild_matches(self):
        graph = chain(4)
        dynamic = DynamicSpf(graph, "n0")
        graph.remove_edge("n1", "n2")
        dynamic.rebuild()
        assert_agrees(dynamic)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_update_stream(seed):
    """Random mixed updates against the from-scratch oracle."""
    rng = random.Random(seed)
    nodes = [f"n{i}" for i in range(10)]
    graph = SpfGraph()
    for node in nodes:
        graph.add_node(node)
    edges: dict[tuple[str, str], int] = {}
    for _ in range(22):
        u, v = rng.sample(nodes, 2)
        cost = rng.randint(1, 6)
        edges[(u, v)] = cost
        graph.set_edge(u, v, cost, nh(u, v))
    sources = nodes[:3]
    dynamics = {s: DynamicSpf(graph, s) for s in sources}
    for _step in range(60):
        action = rng.random()
        if edges and action < 0.4:
            u, v = rng.choice(list(edges))
            del edges[(u, v)]
            graph.remove_edge(u, v)
            for s in sources:
                dynamics[s].edge_increased(u, v)
        else:
            u, v = rng.sample(nodes, 2)
            old = edges.get((u, v))
            cost = rng.randint(1, 6)
            edges[(u, v)] = cost
            graph.set_edge(u, v, cost, nh(u, v))
            for s in sources:
                if old is None or cost < old:
                    dynamics[s].edge_decreased(u, v)
                elif cost > old:
                    dynamics[s].edge_increased(u, v)
        for s in sources:
            assert_agrees(dynamics[s])
