"""IPv4 address and prefix semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import (
    DEFAULT_ROUTE,
    AddressError,
    IPv4Address,
    Prefix,
    iter_subprefixes,
)

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
lengths = st.integers(min_value=0, max_value=32)


class TestIPv4Address:
    def test_parses_dotted_quad(self):
        assert IPv4Address("10.1.2.3").value == (10 << 24) | (1 << 16) | (2 << 8) | 3

    def test_formats_dotted_quad(self):
        assert str(IPv4Address(0xC0A80001)) == "192.168.0.1"

    def test_rejects_bad_octet(self):
        with pytest.raises(AddressError):
            IPv4Address("10.1.2.300")

    def test_rejects_short_quad(self):
        with pytest.raises(AddressError):
            IPv4Address("10.1.2")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(AddressError):
            IPv4Address(1 << 32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    def test_ordering_and_equality(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
        assert IPv4Address("10.0.0.1") == IPv4Address(0x0A000001)

    def test_immutable(self):
        address = IPv4Address(1)
        with pytest.raises(AttributeError):
            address.value = 2  # type: ignore[misc]

    def test_addition(self):
        assert (IPv4Address("10.0.0.1") + 5) == IPv4Address("10.0.0.6")

    @given(addresses)
    def test_string_round_trip(self, value):
        assert IPv4Address(str(IPv4Address(value))).value == value


class TestPrefix:
    def test_parse_cidr(self):
        prefix = Prefix("10.1.0.0/16")
        assert prefix.length == 16
        assert str(prefix) == "10.1.0.0/16"

    def test_host_bits_masked(self):
        assert Prefix("10.1.2.3/16") == Prefix("10.1.0.0/16")

    def test_interval(self):
        prefix = Prefix("10.0.0.0/30")
        lo, hi = prefix.interval()
        assert hi - lo == 4
        assert prefix.first == lo and prefix.last == hi - 1

    def test_contains_address(self):
        prefix = Prefix("10.1.0.0/16")
        assert prefix.contains_address(IPv4Address("10.1.200.7"))
        assert not prefix.contains_address(IPv4Address("10.2.0.0"))

    def test_contains_prefix(self):
        assert Prefix("10.0.0.0/8").contains_prefix(Prefix("10.1.0.0/16"))
        assert not Prefix("10.1.0.0/16").contains_prefix(Prefix("10.0.0.0/8"))

    def test_overlaps(self):
        assert Prefix("10.0.0.0/8").overlaps(Prefix("10.1.0.0/16"))
        assert not Prefix("10.0.0.0/16").overlaps(Prefix("10.1.0.0/16"))

    def test_parent_children_inverse(self):
        prefix = Prefix("10.1.2.0/24")
        low, high = prefix.children()
        assert low.parent() == prefix and high.parent() == prefix
        assert low.length == 25 and high.length == 25
        assert low.first == prefix.first
        assert high.last == prefix.last

    def test_default_route_has_no_parent(self):
        with pytest.raises(AddressError):
            DEFAULT_ROUTE.parent()

    def test_host_prefix_has_no_children(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.1/32").children()

    def test_bit(self):
        prefix = Prefix("128.0.0.0/1")
        assert prefix.bit(0) == 1
        assert Prefix("64.0.0.0/2").bit(0) == 0

    def test_rejects_bad_length(self):
        with pytest.raises(AddressError):
            Prefix("10.0.0.0/33")

    def test_iter_subprefixes(self):
        subs = list(iter_subprefixes(Prefix("10.0.0.0/22"), 24))
        assert len(subs) == 4
        assert subs[0] == Prefix("10.0.0.0/24")
        assert subs[-1] == Prefix("10.0.3.0/24")

    def test_iter_subprefixes_rejects_shorter(self):
        with pytest.raises(AddressError):
            list(iter_subprefixes(Prefix("10.0.0.0/24"), 16))

    @given(addresses, lengths)
    def test_network_has_no_host_bits(self, value, length):
        prefix = Prefix(value, length)
        assert prefix.network & ~prefix.mask == 0

    @given(addresses, lengths)
    def test_children_partition_parent(self, value, length):
        prefix = Prefix(value, length)
        if length == 32:
            return
        low, high = prefix.children()
        assert low.size + high.size == prefix.size
        assert low.last + 1 == high.first

    @given(addresses, st.integers(min_value=1, max_value=32))
    def test_contains_is_interval_membership(self, value, length):
        prefix = Prefix(value, length)
        assert prefix.contains_address(prefix.first)
        assert prefix.contains_address(prefix.last)
        if prefix.first > 0:
            assert not prefix.contains_address(prefix.first - 1)
        if prefix.last < (1 << 32) - 1:
            assert not prefix.contains_address(prefix.last + 1)
