"""The benchmark harness utilities."""

import pytest

from repro.bench.harness import Table, geometric_mean, median, time_call


class TestStats:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_empty(self):
        with pytest.raises(ValueError):
            median([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_time_call_returns_result(self):
        seconds, result = time_call(lambda: 42, repeat=2)
        assert result == 42
        assert seconds >= 0


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["a", "b"])
        table.add("row1", a=1, b=2.5)
        table.add("row2", a=100)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "case" in lines[1]
        assert "-" in lines[2]
        assert "row1" in lines[3] and "2.50" in lines[3]
        assert "row2" in lines[4] and "-" in lines[4]  # missing column

    def test_unknown_column_rejected(self):
        table = Table("demo", ["a"])
        with pytest.raises(KeyError):
            table.add("row", b=1)

    def test_float_formatting(self):
        table = Table("demo", ["v"])
        table.add("big", v=1234.5)
        table.add("mid", v=12.345)
        table.add("small", v=0.01234)
        table.add("zero", v=0.0)
        text = table.render()
        assert "1234" in text and "12.35" in text
        assert "0.0123" in text


class TestOracleError:
    def test_equivalence_error_describes_mismatch(self):
        from repro.core.change import Change
        from repro.core.delta import DeltaReport, ReachSegment
        from repro.core.oracle import EquivalenceError

        got = DeltaReport("got")
        ref = DeltaReport("ref")
        ref.reach_segments = [ReachSegment(0, 10, added=frozenset({("a", "b")}))]
        error = EquivalenceError(Change.of(label="test change"), got, ref)
        message = str(error)
        assert "test change" in message
        assert "missing" in message
