"""The benchmark harness utilities."""

import pytest

from repro.bench.harness import Table, geometric_mean, median, time_call


class TestStats:
    def test_median_odd(self):
        assert median([3, 1, 2]) == 2

    def test_median_even(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_median_empty(self):
        with pytest.raises(ValueError):
            median([])

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_time_call_returns_result(self):
        seconds, result = time_call(lambda: 42, repeat=2)
        assert result == 42
        assert seconds >= 0


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["a", "b"])
        table.add("row1", a=1, b=2.5)
        table.add("row2", a=100)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "case" in lines[1]
        assert "-" in lines[2]
        assert "row1" in lines[3] and "2.50" in lines[3]
        assert "row2" in lines[4] and "-" in lines[4]  # missing column

    def test_unknown_column_rejected(self):
        table = Table("demo", ["a"])
        with pytest.raises(KeyError):
            table.add("row", b=1)

    def test_float_formatting(self):
        table = Table("demo", ["v"])
        table.add("big", v=1234.5)
        table.add("mid", v=12.345)
        table.add("small", v=0.01234)
        table.add("zero", v=0.0)
        text = table.render()
        assert "1234" in text and "12.35" in text
        assert "0.0123" in text


class TestOracleError:
    def test_equivalence_error_describes_mismatch(self):
        from repro.core.change import Change
        from repro.core.delta import DeltaReport, ReachSegment
        from repro.core.oracle import EquivalenceError

        got = DeltaReport("got")
        ref = DeltaReport("ref")
        ref.reach_segments = [ReachSegment(0, 10, added=frozenset({("a", "b")}))]
        error = EquivalenceError(Change.of(label="test change"), got, ref)
        message = str(error)
        assert "test change" in message
        assert "missing" in message


class TestPerfRegressionGate:
    def document(self, **medians):
        return {
            "schema_version": 1,
            "suite": "smoke",
            "results": [
                {"name": name, "median_s": median_s}
                for name, median_s in medians.items()
            ],
        }

    def test_clean_run_passes(self):
        from repro.bench.compare import compare

        baseline = self.document(what_if=0.010, batch=0.040)
        current = self.document(what_if=0.011, batch=0.038)
        assert compare(baseline, current) == []

    def test_regression_past_threshold_fails(self):
        from repro.bench.compare import compare

        baseline = self.document(what_if=0.010)
        current = self.document(what_if=0.014)
        problems = compare(baseline, current, threshold=1.3)
        assert len(problems) == 1
        assert "what_if" in problems[0] and "1.40x" in problems[0]

    def test_exactly_at_threshold_passes(self):
        from repro.bench.compare import compare

        baseline = self.document(what_if=0.010)
        current = self.document(what_if=0.013)
        assert compare(baseline, current, threshold=1.3) == []

    def test_noise_floor_skips_tiny_baselines(self):
        from repro.bench.compare import compare

        baseline = self.document(fast=0.0001)
        current = self.document(fast=0.0009)  # 9x, but sub-millisecond
        assert compare(baseline, current) == []

    def test_dropped_entry_fails_new_entry_passes(self):
        from repro.bench.compare import compare

        baseline = self.document(old=0.010)
        current = self.document(new=0.010)
        problems = compare(baseline, current)
        assert len(problems) == 1
        assert "old" in problems[0] and "missing" in problems[0]

    def test_cli_exit_codes(self, tmp_path, capsys):
        import json

        from repro.bench.compare import main

        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        baseline_path.write_text(json.dumps(self.document(what_if=0.010)))
        current_path.write_text(json.dumps(self.document(what_if=0.020)))
        assert main([str(baseline_path), str(current_path)]) == 1
        assert "FAILED" in capsys.readouterr().out
        assert (
            main([str(baseline_path), str(current_path), "--threshold", "3"])
            == 0
        )
        assert "passed" in capsys.readouterr().out
