"""Packet tracing and path diff queries."""

import pytest

from repro.config.acl import Acl, AclAction, AclRule
from repro.config.routing import StaticRouteConfig
from repro.controlplane.simulation import simulate
from repro.core.change import AddStaticRoute, Change, LinkDown
from repro.net.addr import Prefix
# The deprecated free-function shims delegate to these; the engine
# tests exercise the implementations directly (shim behaviour is
# covered by tests/test_deprecations.py).
from repro.query.paths import _forwarding_paths as forwarding_paths
from repro.query.paths import _path_diff as path_diff
from repro.query.trace import TraceOutcome
from repro.query.trace import _trace_packet as trace_packet
from repro.workloads.scenarios import fat_tree_ospf, line_static, ring_ospf


@pytest.fixture()
def line4():
    scenario = line_static(4)
    return scenario, simulate(scenario.snapshot)


class TestTrace:
    def test_delivery_along_chain(self, line4):
        scenario, state = line4
        target = scenario.fabric.host_subnets["r3"][0]
        trace = trace_packet(state, "r0", {"dst": target.first + 7})
        assert trace.is_delivered()
        assert trace.delivered_at() == {"r3"}
        routers_on_path = [hop.router for hop in trace.hops]
        assert routers_on_path[0] == "r0"
        assert "r3" in routers_on_path

    def test_no_route(self, line4):
        _scenario, state = line4
        trace = trace_packet(state, "r0", {"dst": Prefix("203.0.113.0/24").first})
        assert trace.fates() == {TraceOutcome.NO_ROUTE}

    def test_null_route_drop(self, line4):
        scenario, _state = line4
        snapshot = scenario.snapshot.clone()
        snapshot.config("r0").add_static_route(
            StaticRouteConfig(Prefix("198.51.100.0/24"), drop=True)
        )
        state = simulate(snapshot)
        trace = trace_packet(state, "r0", {"dst": Prefix("198.51.100.0/24").first})
        assert trace.fates() == {TraceOutcome.DROPPED_NULL}

    def test_four_field_acl_exact(self, line4):
        """The tracer honours src/proto/port constraints the atom view
        treats as MIXED."""
        scenario, _state = line4
        snapshot = scenario.snapshot.clone()
        target = scenario.fabric.host_subnets["r3"][0]
        config = snapshot.config("r1")
        config.acls["WEB"] = Acl(
            "WEB",
            [
                AclRule(
                    AclAction.DENY, dst=target, proto=6, dport_lo=80, dport_hi=80
                ),
                AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ],
        )
        config.ensure_interface("eth1").acl_out = "WEB"
        state = simulate(snapshot)
        web = {"dst": target.first + 1, "proto": 6, "dport": 80}
        ssh = {"dst": target.first + 1, "proto": 6, "dport": 22}
        assert trace_packet(state, "r0", web).fates() == {TraceOutcome.DROPPED_ACL}
        assert trace_packet(state, "r0", ssh).is_delivered()

    def test_loop_detection(self):
        scenario = line_static(2)
        snapshot = scenario.snapshot
        prefix = Prefix("198.51.100.0/24")
        r1_ip = snapshot.topology.interface_peer("r0", "eth1").address
        r0_ip = snapshot.topology.interface_peer("r1", "eth0").address
        Change.of(
            AddStaticRoute("r0", StaticRouteConfig(prefix, next_hop=r1_ip)),
            AddStaticRoute("r1", StaticRouteConfig(prefix, next_hop=r0_ip)),
        ).apply(snapshot)
        state = simulate(snapshot)
        trace = trace_packet(state, "r0", {"dst": prefix.first})
        assert TraceOutcome.LOOP in trace.fates()

    def test_ecmp_explores_all_branches(self):
        scenario = fat_tree_ospf(4)
        state = simulate(scenario.snapshot)
        target = scenario.fabric.host_subnets["edge1_0"][0]
        trace = trace_packet(state, "edge0_0", {"dst": target.first + 1})
        assert trace.is_delivered()
        forwarded_via = {
            hop.action.rsplit(" ", 1)[-1]
            for hop in trace.hops
            if hop.router == "edge0_0" and "forward" in hop.action
        }
        assert forwarded_via == {"agg0_0", "agg0_1"}

    def test_trace_agrees_with_atom_reachability(self):
        scenario = ring_ospf(6)
        state = simulate(scenario.snapshot, precompute_reachability=True)
        for owner, subnets in scenario.fabric.host_subnets.items():
            address = subnets[0].first + 1
            atom = state.dataplane.atom_table.atom_containing(address)
            reach = state.reachability.for_atom(atom)
            for source in scenario.topology.router_names():
                traced = trace_packet(state, source, {"dst": address})
                assert traced.is_delivered() == reach.reaches(source, owner)

    def test_requires_dst(self, line4):
        _scenario, state = line4
        with pytest.raises(ValueError, match="dst"):
            trace_packet(state, "r0", {"src": 1})

    def test_render(self, line4):
        scenario, state = line4
        target = scenario.fabric.host_subnets["r3"][0]
        text = trace_packet(state, "r0", {"dst": target.first}).render()
        assert "trace from r0" in text and "delivered" in text


class TestPathDiff:
    def test_reroute_reported(self):
        scenario = ring_ospf(6)
        before = simulate(scenario.snapshot)
        changed = scenario.snapshot.clone()
        LinkDown("r0", "r1").apply(changed)
        after = simulate(changed)
        target = scenario.fabric.host_subnets["r1"][0]
        diff = path_diff(before, after, "r0", target.first + 1)
        assert ("r0", "r1") in diff.removed_edges
        assert diff.reachable_before and diff.reachable_after
        assert "no longer via" in str(diff)

    def test_unchanged_path_empty_diff(self):
        scenario = ring_ospf(6)
        state = simulate(scenario.snapshot)
        target = scenario.fabric.host_subnets["r3"][0]
        diff = path_diff(state, state, "r0", target.first + 1)
        assert diff.is_empty()
        assert str(diff) == "unchanged"

    def test_forwarding_paths_delivery_flag(self):
        scenario = line_static(3)
        state = simulate(scenario.snapshot)
        target = scenario.fabric.host_subnets["r2"][0]
        edges, delivered = forwarding_paths(state, "r0", target.first + 1)
        assert delivered
        assert edges == {("r0", "r1"), ("r1", "r2")}
