"""Incremental Datalog: counting + DRed against full re-evaluation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datalog.ast import (
    Comparison,
    DatalogError,
    Program,
    Rule,
    Variable,
    atom,
    negated,
)
from repro.datalog.database import Database
from repro.datalog.engine import evaluate_program
from repro.datalog.incremental import Delta, IncrementalProgram

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

TC_RULES = [
    Rule(atom("path", X, Y), [atom("edge", X, Y)]),
    Rule(atom("path", X, Z), [atom("path", X, Y), atom("edge", Y, Z)]),
]
NEG_RULES = TC_RULES + [
    Rule(
        atom("unreach", X, Y),
        [atom("node", X), atom("node", Y), negated("path", X, Y)],
    ),
]


def reference(rules, facts):
    db = Database()
    for name, rows in facts.items():
        arity = len(next(iter(rows))) if rows else 2
        db.relation(name, arity).load(rows)
    evaluate_program(Program(rules), db)
    return db


class TestCounting:
    """Non-recursive strata use the counting algorithm."""

    RULES = [
        Rule(atom("join", X, Z), [atom("r", X, Y), atom("s", Y, Z)]),
        Rule(atom("filtered", X), [atom("r", X, Y), Comparison(">", Y, 5)]),
    ]

    def make(self, r_rows, s_rows):
        db = Database()
        db.relation("r", 2).load(r_rows)
        db.relation("s", 2).load(s_rows)
        return db, IncrementalProgram(Program(self.RULES), db)

    def test_insert_propagates(self):
        db, inc = self.make({(1, 2)}, {(2, 9)})
        delta = inc.apply(inserts={"r": {(5, 2)}})
        assert delta.inserted("join") == {(5, 9)}

    def test_delete_propagates(self):
        db, inc = self.make({(1, 2)}, {(2, 9)})
        delta = inc.apply(deletes={"s": {(2, 9)}})
        assert delta.deleted("join") == {(1, 9)}

    def test_multi_derivation_survives_single_delete(self):
        # join(1, 9) derivable through Y=2 and Y=3.
        db, inc = self.make({(1, 2), (1, 3)}, {(2, 9), (3, 9)})
        delta = inc.apply(deletes={"r": {(1, 2)}})
        assert (1, 9) not in delta.deleted("join")
        delta = inc.apply(deletes={"r": {(1, 3)}})
        assert delta.deleted("join") == {(1, 9)}

    def test_comparison_guard_respected(self):
        db, inc = self.make({(1, 9)}, set())
        assert (1,) in db.relation("filtered")
        delta = inc.apply(inserts={"r": {(2, 3)}})
        assert (2,) not in db.relation("filtered")
        assert not delta.inserted("filtered")

    def test_duplicate_edb_insert_is_noop(self):
        db, inc = self.make({(1, 2)}, {(2, 9)})
        delta = inc.apply(inserts={"r": {(1, 2)}})
        assert delta.is_empty()

    def test_delete_absent_row_is_noop(self):
        db, inc = self.make({(1, 2)}, {(2, 9)})
        delta = inc.apply(deletes={"r": {(7, 7)}})
        assert delta.is_empty()

    def test_insert_then_delete_in_one_batch(self):
        db, inc = self.make({(1, 2)}, {(2, 9)})
        delta = inc.apply(inserts={"r": {(4, 2)}}, deletes={"r": {(1, 2)}})
        assert delta.inserted("join") == {(4, 9)}
        assert delta.deleted("join") == {(1, 9)}

    def test_idb_direct_change_rejected(self):
        db, inc = self.make({(1, 2)}, {(2, 9)})
        with pytest.raises(DatalogError, match="derived relation"):
            inc.apply(inserts={"join": {(1, 1)}})


class TestDRed:
    """Recursive strata use delete/re-derive."""

    def make(self, edges):
        db = Database()
        db.relation("edge", 2).load(edges)
        return db, IncrementalProgram(Program(TC_RULES), db)

    def test_deletion_with_alternate_path_rederives(self):
        # 1->3 via 2 and directly.
        db, inc = self.make({(1, 2), (2, 3), (1, 3)})
        delta = inc.apply(deletes={"edge": {(1, 2)}})
        assert (1, 3) not in delta.deleted("path")
        assert (1, 2) in delta.deleted("path")

    def test_deletion_breaks_chain(self):
        db, inc = self.make({(1, 2), (2, 3), (3, 4)})
        delta = inc.apply(deletes={"edge": {(2, 3)}})
        assert delta.deleted("path") == {(2, 3), (1, 3), (2, 4), (1, 4)}

    def test_cycle_deletion(self):
        db, inc = self.make({(1, 2), (2, 1)})
        inc.apply(deletes={"edge": {(2, 1)}})
        assert db.relation("path").snapshot() == {(1, 2)}

    def test_insertion_extends_closure(self):
        db, inc = self.make({(1, 2), (3, 4)})
        delta = inc.apply(inserts={"edge": {(2, 3)}})
        assert delta.inserted("path") >= {(2, 3), (1, 3), (2, 4), (1, 4)}

    def test_negation_across_strata(self):
        db = Database()
        db.relation("edge", 2).load({(1, 2)})
        db.relation("node", 1).load({(1,), (2,), (3,)})
        inc = IncrementalProgram(Program(NEG_RULES), db)
        assert (1, 3) in db.relation("unreach")
        delta = inc.apply(inserts={"edge": {(2, 3)}})
        assert (1, 3) in delta.deleted("unreach")
        delta = inc.apply(deletes={"edge": {(2, 3)}})
        assert (1, 3) in delta.inserted("unreach")


class TestDeltaType:
    def test_from_flips_and_accessors(self):
        delta = Delta.from_flips({"r": {(1,): 1, (2,): -1, (3,): 0}})
        assert delta.inserted("r") == {(1,)}
        assert delta.deleted("r") == {(2,)}
        assert delta.touched_relations() == {"r"}
        assert delta.size() == 2

    def test_str(self):
        delta = Delta.from_flips({"r": {(1,): 1}})
        assert "r(+1/-0)" in str(delta)


class TestRandomizedOracle:
    """The headline property: incremental == from-scratch, always."""

    def _run_stream(self, rules, nodes, seed, steps):
        rng = random.Random(seed)
        edges: set = set()
        db = Database()
        db.relation("edge", 2)
        db.relation("node", 1).load({(n,) for n in range(nodes)})
        inc = IncrementalProgram(Program(rules), db)
        idb = {rule.head.relation for rule in rules}
        for _step in range(steps):
            ins, dels = set(), set()
            for _ in range(rng.randint(1, 3)):
                e = (rng.randrange(nodes), rng.randrange(nodes))
                if e in edges and rng.random() < 0.5:
                    dels.add(e)
                else:
                    ins.add(e)
            ins -= dels
            edges = (edges - dels) | ins
            inc.apply(inserts={"edge": ins}, deletes={"edge": dels})
            ref = reference(
                rules, {"edge": edges, "node": {(n,) for n in range(nodes)}}
            )
            for relation in idb:
                assert db.relation(relation).snapshot() == ref.relation(
                    relation
                ).snapshot(), (_step, relation)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tc_stream(self, seed):
        self._run_stream(TC_RULES, nodes=7, seed=seed, steps=50)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_negation_stream(self, seed):
        self._run_stream(NEG_RULES, nodes=6, seed=seed, steps=40)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.booleans()),
        min_size=1, max_size=25,
    ))
    def test_hypothesis_stream(self, operations):
        edges: set = set()
        db = Database()
        db.relation("edge", 2)
        db.relation("node", 1).load({(n,) for n in range(5)})
        inc = IncrementalProgram(Program(NEG_RULES), db)
        for u, v, insert in operations:
            if insert:
                edges.add((u, v))
                inc.apply(inserts={"edge": {(u, v)}})
            else:
                edges.discard((u, v))
                inc.apply(deletes={"edge": {(u, v)}})
        ref = Database()
        ref.relation("edge", 2).load(edges)
        ref.relation("node", 1).load({(n,) for n in range(5)})
        evaluate_program(Program(NEG_RULES), ref)
        assert db.relation("path").snapshot() == ref.relation("path").snapshot()
        assert db.relation("unreach").snapshot() == ref.relation("unreach").snapshot()
