"""Monotone cost Datalog: engine semantics and the OSPF reference."""

import random

import pytest

from repro.controlplane.datalog_model import spf_distances_via_datalog
from repro.controlplane.ospf import build_ospf_state
from repro.controlplane.rib import NextHop
from repro.controlplane.spf import SpfGraph, dijkstra
from repro.datalog.ast import Atom, Comparison, DatalogError, Variable, atom
from repro.datalog.costlog import CostAtom, CostProgram, CostRule, sum_of
from repro.datalog.database import Database
from repro.workloads.scenarios import fat_tree_ospf, ring_ospf

S, U, V = Variable("S"), Variable("U"), Variable("V")
C1, C2 = Variable("C1"), Variable("C2")


def shortest_path_program() -> CostProgram:
    return CostProgram(
        [
            CostRule(atom("dist", S, S), [atom("node", S)], sum_of()),
            CostRule(
                atom("dist", S, V),
                [CostAtom(atom("dist", S, U), C1), CostAtom(atom("link", U, V), C2)],
                sum_of(C1, C2),
            ),
        ]
    )


def evaluate(nodes, links):
    database = Database()
    database.relation("node", 1).load({(n,) for n in nodes})
    return shortest_path_program().evaluate(
        database, {"link": {k: float(c) for k, c in links.items()}}
    )


class TestEngine:
    def test_simple_chain(self):
        result = evaluate("abc", {("a", "b"): 1, ("b", "c"): 2})
        assert result["dist"][("a", "c")] == 3
        assert result["dist"][("a", "a")] == 0

    def test_min_of_alternatives(self):
        result = evaluate(
            "abc", {("a", "b"): 1, ("b", "c"): 1, ("a", "c"): 5}
        )
        assert result["dist"][("a", "c")] == 2

    def test_cycles_terminate(self):
        result = evaluate("ab", {("a", "b"): 1, ("b", "a"): 1})
        assert result["dist"][("a", "b")] == 1
        assert result["dist"][("b", "b")] == 0

    def test_unreachable_absent(self):
        result = evaluate("abc", {("a", "b"): 1})
        assert ("a", "c") not in result["dist"]

    def test_guards(self):
        bounded = CostProgram(
            [
                CostRule(atom("dist", S, S), [atom("node", S)], sum_of()),
                CostRule(
                    atom("dist", S, V),
                    [
                        CostAtom(atom("dist", S, U), C1),
                        CostAtom(atom("link", U, V), C2),
                        Comparison("<", C1, 3),
                    ],
                    sum_of(C1, C2),
                ),
            ]
        )
        database = Database()
        database.relation("node", 1).load({(n,) for n in "abcde"})
        links = {(x, y): 2.0 for x, y in zip("abcd", "bcde")}
        result = bounded.evaluate(database, {"link": links})
        # Extension beyond accumulated cost 3 is cut: a->b (2),
        # a->c (4, from C1=2 < 3), but not a->d (would need C1=4).
        assert ("a", "c") in result["dist"]
        assert ("a", "d") not in result["dist"]

    def test_unsafe_head_rejected(self):
        with pytest.raises(DatalogError, match="unsafe"):
            CostRule(atom("dist", S, V), [atom("node", S)], sum_of())

    def test_base_cost_facts_exposed(self):
        result = evaluate("ab", {("a", "b"): 7})
        assert result["link"][("a", "b")] == 7


class TestAgainstDijkstra:
    def _graph(self, edges) -> SpfGraph:
        graph = SpfGraph()
        for (u, v), cost in edges.items():
            graph.set_edge(
                u, v, cost, frozenset({NextHop(interface=f"{u}:{v}", neighbor=v)})
            )
        return graph

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        nodes = [f"n{i}" for i in range(9)]
        edges = {}
        for _ in range(20):
            u, v = rng.sample(nodes, 2)
            edges[(u, v)] = rng.randint(1, 9)
        graph = self._graph(edges)
        for node in nodes:
            graph.add_node(node)
        datalog = spf_distances_via_datalog(graph)
        for source in nodes:
            dist, _parents = dijkstra(graph, source)
            for target, cost in dist.items():
                assert datalog[(source, target)] == cost
            unreachable = set(nodes) - set(dist)
            for target in unreachable:
                assert (source, target) not in datalog

    def test_ospf_area_graph(self):
        scenario = ring_ospf(6)
        state = build_ospf_state(scenario.snapshot)
        graph = state.graphs[0]
        datalog = spf_distances_via_datalog(graph)
        for source in graph.nodes():
            dist, _ = dijkstra(graph, source)
            got = {t: c for (s, t), c in datalog.items() if s == source}
            assert got == dist

    def test_fat_tree_area_graph(self):
        scenario = fat_tree_ospf(4)
        state = build_ospf_state(scenario.snapshot)
        graph = state.graphs[0]
        datalog = spf_distances_via_datalog(graph)
        dist, _ = dijkstra(graph, "edge0_0")
        got = {t: c for (s, t), c in datalog.items() if s == "edge0_0"}
        assert got == dist
