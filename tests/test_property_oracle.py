"""Property-based end-to-end oracle.

Hypothesis drives the whole stack: random change sequences (drawn by
kind and seed) over small scenarios, every step checked for exact
agreement between the incremental analyzer and the snapshot-diff
baseline.  Shrinking then minimizes any counterexample to the shortest
disagreeing change sequence — the most valuable debugging artifact
this repository has.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.oracle import EquivalenceOracle
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import line_static, ring_ospf

IGP_KINDS = ("link", "iface", "static", "cost")

_sequences = st.lists(
    st.sampled_from(IGP_KINDS), min_size=1, max_size=4
)


def _apply_kind(oracle: EquivalenceOracle, generator: ChangeGenerator, kind: str) -> None:
    if kind == "link":
        down, up = generator.random_link_failure()
        oracle.step(down)
        oracle.step(up)
    elif kind == "iface":
        shutdown, enable = generator.random_interface_flap()
        oracle.step(shutdown)
        oracle.step(enable)
    elif kind == "static":
        add, remove = generator.random_static_route()
        oracle.step(add)
        oracle.step(remove)
    elif kind == "cost":
        oracle.step(generator.random_ospf_cost())


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(kinds=_sequences, seed=st.integers(min_value=0, max_value=2**16))
def test_ospf_ring_streams_agree(kinds, seed):
    scenario = ring_ospf(5)
    oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
    generator = ChangeGenerator(scenario, seed=seed)
    for kind in kinds:
        _apply_kind(oracle, generator, kind)
    assert oracle.stats.pass_rate == 1.0


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kinds=st.lists(st.sampled_from(("link", "iface", "static")), min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_static_chain_streams_agree(kinds, seed):
    scenario = line_static(4)
    oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
    generator = ChangeGenerator(scenario, seed=seed)
    for kind in kinds:
        _apply_kind(oracle, generator, kind)
    assert oracle.stats.pass_rate == 1.0
