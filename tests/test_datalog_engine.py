"""Datalog AST, stratification, and full evaluation."""

import pytest

from repro.datalog.ast import (
    Comparison,
    DatalogError,
    Let,
    Program,
    Rule,
    Variable,
    atom,
    negated,
)
from repro.datalog.database import Database
from repro.datalog.engine import evaluate_program, query

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


def run(rules, facts):
    program = Program(rules)
    db = Database()
    for name, rows in facts.items():
        arity = len(next(iter(rows))) if rows else 1
        db.relation(name, arity).load(rows)
    evaluate_program(program, db)
    return db


class TestRuleConstruction:
    def test_unsafe_head_rejected(self):
        with pytest.raises(DatalogError, match="unsafe head"):
            Rule(atom("p", X, Y), [atom("q", X)])

    def test_unsafe_negation_rejected(self):
        with pytest.raises(DatalogError, match="unsafe"):
            Rule(atom("p", X), [atom("q", X), negated("r", Y)])

    def test_guards_scheduled_after_binding(self):
        rule = Rule(
            atom("p", X),
            [Comparison("<", X, 5), atom("q", X)],
        )
        # The comparison must run after q binds X.
        assert isinstance(rule.plan[0], type(atom("q", X)))

    def test_let_binds_new_variable(self):
        rule = Rule(
            atom("p", X, Z),
            [atom("q", X, Y), Let(Z, lambda a, b: a + b, (X, Y))],
        )
        assert rule.plan[-1].var is Z  # type: ignore[union-attr]

    def test_variables_interned(self):
        assert Variable("Same") is Variable("Same")


class TestStratification:
    def test_negation_cycle_rejected(self):
        with pytest.raises(DatalogError, match="not stratifiable"):
            Program(
                [
                    Rule(atom("p", X), [atom("e", X), negated("q", X)]),
                    Rule(atom("q", X), [atom("e", X), negated("p", X)]),
                ]
            )

    def test_strata_order_respects_negation(self):
        program = Program(
            [
                Rule(atom("p", X), [atom("e", X)]),
                Rule(atom("q", X), [atom("e", X), negated("p", X)]),
            ]
        )
        assert program.stratum_of["p"] < program.stratum_of["q"]

    def test_mutual_recursion_single_stratum(self):
        program = Program(
            [
                Rule(atom("even", X), [atom("zero", X)]),
                Rule(atom("even", Y), [atom("odd", X), atom("succ", X, Y)]),
                Rule(atom("odd", Y), [atom("even", X), atom("succ", X, Y)]),
            ]
        )
        assert program.stratum_of["even"] == program.stratum_of["odd"]
        assert program.stratum_is_recursive(program.stratum_of["even"])

    def test_edb_relations(self):
        program = Program([Rule(atom("p", X), [atom("e", X)])])
        assert program.edb_relations() == {"e"}


class TestEvaluation:
    def test_transitive_closure(self):
        db = run(
            [
                Rule(atom("path", X, Y), [atom("edge", X, Y)]),
                Rule(atom("path", X, Z), [atom("path", X, Y), atom("edge", Y, Z)]),
            ],
            {"edge": {(1, 2), (2, 3), (3, 4)}},
        )
        assert (1, 4) in db.relation("path")
        assert len(db.relation("path")) == 6

    def test_cyclic_graph_terminates(self):
        db = run(
            [
                Rule(atom("path", X, Y), [atom("edge", X, Y)]),
                Rule(atom("path", X, Z), [atom("path", X, Y), atom("edge", Y, Z)]),
            ],
            {"edge": {(1, 2), (2, 1)}},
        )
        assert len(db.relation("path")) == 4

    def test_negation(self):
        db = run(
            [
                Rule(atom("reach", X), [atom("start", X)]),
                Rule(atom("reach", Y), [atom("reach", X), atom("edge", X, Y)]),
                Rule(atom("isolated", X), [atom("node", X), negated("reach", X)]),
            ],
            {
                "edge": {(1, 2)},
                "start": {(1,)},
                "node": {(1,), (2,), (3,)},
            },
        )
        assert query(db, "isolated") == [(3,)]

    def test_comparison_guards(self):
        db = run(
            [
                Rule(
                    atom("small", X),
                    [atom("num", X), Comparison("<", X, 10)],
                )
            ],
            {"num": {(5,), (15,)}},
        )
        assert query(db, "small") == [(5,)]

    def test_let_computation(self):
        db = run(
            [
                Rule(
                    atom("double", X, Z),
                    [atom("num", X), Let(Z, lambda v: v * 2, (X,))],
                )
            ],
            {"num": {(3,), (4,)}},
        )
        assert query(db, "double") == [(3, 6), (4, 8)]

    def test_constants_in_atoms(self):
        db = run(
            [Rule(atom("to_three", X), [atom("edge", X, 3)])],
            {"edge": {(1, 3), (2, 4)}},
        )
        assert query(db, "to_three") == [(1,)]

    def test_repeated_variable_in_atom(self):
        db = run(
            [Rule(atom("self_loop", X), [atom("edge", X, X)])],
            {"edge": {(1, 1), (1, 2)}},
        )
        assert query(db, "self_loop") == [(1,)]

    def test_counting_multiplicity_for_flat_strata(self):
        # p(X) derivable two ways -> multiplicity 2 internally, still
        # one row in the set view.
        db = run(
            [
                Rule(atom("p", X), [atom("a", X)]),
                Rule(atom("p", X), [atom("b", X)]),
            ],
            {"a": {(1,)}, "b": {(1,)}},
        )
        assert db.relation("p").multiplicity((1,)) == 2
        assert len(db.relation("p")) == 1

    def test_query_pattern(self):
        db = run(
            [Rule(atom("p", X, Y), [atom("e", X, Y)])],
            {"e": {(1, 2), (1, 3), (2, 3)}},
        )
        assert query(db, "p", (1, None)) == [(1, 2), (1, 3)]

    def test_arity_mismatch_rejected(self):
        program = Program(
            [
                Rule(atom("p", X), [atom("e", X, Y)]),
                Rule(atom("p", X), [atom("e", X)]),
            ]
        )
        with pytest.raises(ValueError, match="arities"):
            evaluate_program(program, Database())
