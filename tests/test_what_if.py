"""Fork/rollback equivalence for the analyzer's what-if API.

For every change kind the suite asserts the two halves of the
contract:

1. **Report equality** — ``what_if(change)`` produces exactly the
   report a committed ``analyze(change)`` on a fresh analyzer would.
2. **Rollback exactness** — after the fork exits, the snapshot
   serializes identically to the base and the converged state is
   behaviourally indistinguishable from a from-scratch simulation of
   the base (oracle: :func:`~repro.core.snapshot_diff.diff_states`);
   and a *committed* analysis run afterwards still agrees with the
   :class:`~repro.core.snapshot_diff.SnapshotDiff` baseline, proving
   the restored incremental structures are live, not just
   display-equal.
"""

from __future__ import annotations

import pytest

from repro.config.text import serialize_configs
from repro.controlplane.simulation import simulate
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, LinkDown
from repro.core.forking import ForkError
from repro.core.snapshot import serialize_topology
from repro.core.snapshot_diff import SnapshotDiff, diff_states
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import fat_tree_ospf, internet2_bgp, ring_ospf


def _assert_rolled_back(analyzer, base_snapshot, base_state):
    assert serialize_configs(analyzer.snapshot.configs) == serialize_configs(
        base_snapshot.configs
    )
    assert serialize_topology(analyzer.snapshot.topology) == serialize_topology(
        base_snapshot.topology
    )
    drift = diff_states(base_state, analyzer.state)
    assert drift.is_empty(), f"state drifted after rollback:\n{drift.summary()}"


def _assert_what_if_equivalent(scenario, change):
    base_snapshot = scenario.snapshot.clone()
    base_state = simulate(base_snapshot, precompute_reachability=True)
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot.clone())

    committed = DifferentialNetworkAnalyzer(base_snapshot.clone()).analyze(
        change
    )
    speculative = analyzer.what_if(change)
    assert (
        speculative.behavior_signature() == committed.behavior_signature()
    ), f"what_if diverged from committed analyze for {change.label!r}"

    _assert_rolled_back(analyzer, base_snapshot, base_state)

    # The restored incremental state must keep producing correct
    # committed analyses (catches restores that only look right).
    verify = analyzer.analyze(change)
    reference = SnapshotDiff(base_snapshot.clone()).analyze(change)
    assert verify.behavior_signature() == reference.behavior_signature()


class TestWhatIfChangeKinds:
    def test_link_failure(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=11)
        down, _up = gen.random_link_failure()
        _assert_what_if_equivalent(fat_tree_k4_scenario, down)

    def test_interface_flap(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=12)
        shutdown, _enable = gen.random_interface_flap()
        _assert_what_if_equivalent(fat_tree_k4_scenario, shutdown)

    def test_static_route(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=13)
        add, _remove = gen.random_static_route()
        _assert_what_if_equivalent(fat_tree_k4_scenario, add)

    def test_ospf_cost(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=14)
        _assert_what_if_equivalent(
            fat_tree_k4_scenario, gen.random_ospf_cost()
        )

    def test_acl_block(self, fat_tree_k4_scenario):
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=15)
        block, _unblock = gen.random_acl_block()
        _assert_what_if_equivalent(fat_tree_k4_scenario, block)

    def test_bgp_session_teardown(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=16)
        teardown, _restore = gen.random_session_flap()
        _assert_what_if_equivalent(internet2_scenario, teardown)

    def test_bgp_prefix_announce(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=17)
        announce, _withdraw = gen.random_prefix_flap()
        _assert_what_if_equivalent(internet2_scenario, announce)

    def test_bgp_local_pref_flip(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=18)
        _assert_what_if_equivalent(
            internet2_scenario, gen.dual_homed_pref_flip(100, 200)
        )

    def test_wan_link_failure(self, internet2_scenario):
        gen = ChangeGenerator(internet2_scenario, seed=19)
        down, _up = gen.random_link_failure()
        _assert_what_if_equivalent(internet2_scenario, down)


class TestForkSemantics:
    def test_sequential_what_ifs_stay_on_base(self, ring8_scenario):
        base = ring8_scenario.snapshot.clone()
        base_state = simulate(base, precompute_reachability=True)
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        gen = ChangeGenerator(ring8_scenario, seed=21)
        for _ in range(5):
            down, _up = gen.random_link_failure()
            analyzer.what_if(down)
        _assert_rolled_back(analyzer, base, base_state)

    def test_fork_context_spans_multiple_analyses(self, ring8_scenario):
        base = ring8_scenario.snapshot.clone()
        base_state = simulate(base, precompute_reachability=True)
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        gen = ChangeGenerator(ring8_scenario, seed=22)
        down, up = gen.random_link_failure()
        add, _remove = gen.random_static_route()
        with analyzer.fork() as forked:
            assert forked is analyzer
            first = forked.analyze(down)
            assert not first.is_empty()
            # Cumulative: the next analysis sees the failed link.
            forked.analyze(add)
            forked.analyze(up)
        _assert_rolled_back(analyzer, base, base_state)

    def test_what_if_rolls_back_on_apply_error(self, ring8_scenario):
        base = ring8_scenario.snapshot.clone()
        base_state = simulate(base, precompute_reachability=True)
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        bad = Change.of(
            LinkDown("r0", "r1"),
            LinkDown("r0", "no_such_router"),
            label="partially applicable",
        )
        with pytest.raises(Exception):
            analyzer.what_if(bad)
        _assert_rolled_back(analyzer, base, base_state)

    def test_nested_forks_rejected(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        with analyzer.fork():
            with pytest.raises(ForkError):
                with analyzer.fork():
                    pass  # pragma: no cover

    def test_what_if_matches_snapshot_diff_oracle(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        gen = ChangeGenerator(ring8_scenario, seed=23)
        down, _up = gen.random_link_failure()
        speculative = analyzer.what_if(down)
        oracle = SnapshotDiff(ring8_scenario.snapshot.clone()).analyze(down)
        assert (
            speculative.behavior_signature() == oracle.behavior_signature()
        )

    def test_multi_analyze_fork_leaves_no_stale_reachability(self):
        """Atoms created mid-fork must not survive rollback in the cache.

        An ACL on an unaligned /26 splits a host-subnet atom; a second
        analysis inside the same fork then dirties the whole subnet, so
        its "before" capture is keyed by the split (fork-created)
        atoms.  Rollback must not reinstate those: they would shadow
        the true base entries and a later committed analysis would
        report phantom reachability changes.
        """
        from repro.config.acl import AclAction, AclRule
        from repro.core.change import AddAclRule, BindAcl
        from repro.net.addr import Prefix

        scenario = ring_ospf(8)
        base = scenario.snapshot.clone()
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot.clone())
        subnet = scenario.fabric.host_subnets["r2"][0]
        sub26 = Prefix(subnet.first + 64, 26)
        acl_block = Change.of(
            AddAclRule(
                "r1",
                "T",
                AclRule(action=AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ),
            AddAclRule(
                "r1", "T", AclRule(action=AclAction.DENY, dst=sub26), position=0
            ),
            BindAcl("r1", "eth1", "T", "out"),
            label="block /26 behind r1",
        )
        down = Change.of(LinkDown("r4", "r5"), label="fail r4--r5")
        with analyzer.fork():
            analyzer.analyze(acl_block)
            analyzer.analyze(down)
        live = set(analyzer.state.dataplane.atom_table.atoms())
        stale = analyzer.state.reachability.cached_atoms() - live
        assert not stale, f"stale atoms survived rollback: {sorted(stale)}"
        committed = analyzer.analyze(down)
        reference = SnapshotDiff(base.clone()).analyze(down)
        assert (
            committed.behavior_signature() == reference.behavior_signature()
        )

    def test_interleaved_what_if_and_commit(self, fat_tree_k4_scenario):
        """what_if between commits sees the committed state, not base."""
        analyzer = DifferentialNetworkAnalyzer(
            fat_tree_k4_scenario.snapshot.clone()
        )
        gen = ChangeGenerator(fat_tree_k4_scenario, seed=24)
        down, up = gen.random_link_failure()
        committed_down = analyzer.analyze(down)
        assert not committed_down.is_empty()
        # Speculating the recovery from the failed state reports the
        # inverse delta; state stays failed afterwards.
        speculative_up = analyzer.what_if(up)
        assert not speculative_up.is_empty()
        committed_up = analyzer.analyze(up)
        assert (
            speculative_up.behavior_signature()
            == committed_up.behavior_signature()
        )
