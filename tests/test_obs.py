"""The unified observability layer: spans, metrics, attribution.

Acceptance, per the obs contract:

- span trees export as versioned JSON (``kind: "span-trace"``) that
  round-trips byte-stably and rejects unknown schema versions;
- the default NULL tracer records nothing while every existing
  ``report.timings``/``report.counters`` key stays populated;
- a traced analysis attributes per-stage timings AND dirty-set sizes
  to the recompute stage spans, and the stage durations sum (within
  tolerance) to the reported total;
- campaign metrics merge byte-identically across the serial and
  multiprocessing backends.
"""

import json

import pytest

from repro.api import ChangeSet, Network
from repro.campaign import all_single_link_failures
from repro.core.serialize import SchemaError
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
)
def dumps(document):
    return json.dumps(document, sort_keys=True)


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", phase="demo"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b") as span:
                span.set(items=3)
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert root.labels == {"phase": "demo"}
        assert [child.name for child in root.children] == [
            "inner.a", "inner.b"
        ]
        assert root.find("inner.b").labels == {"items": 3}
        assert root.duration >= root.child_time() >= 0

    def test_two_top_level_spans_are_two_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        # A fresh span after the raise is a new root, not a child.
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["outer", "after"]

    def test_span_duration_readable_after_exit(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.duration > 0
        assert span.duration == tracer.roots[0].duration

    def test_reset_clears_the_forest(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.find("old") is None

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [record.name for record in tracer.walk()] == ["a", "b", "c"]
        assert tracer.find("c").name == "c"
        assert tracer.find("missing") is None

    def test_render_indents_children(self):
        tracer = Tracer()
        with tracer.span("parent", kind="x"):
            with tracer.span("child"):
                pass
        lines = tracer.render().splitlines()
        assert lines[0].startswith("parent:")
        assert "[kind=x]" in lines[0]
        assert lines[1].startswith("  child:")


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("invisible", label=1) as span:
            span.set(more=2)
        assert tracer.roots == []
        assert not tracer.enabled
        assert span.record is None

    def test_still_times_the_span(self):
        with NULL_TRACER.span("timed") as span:
            pass
        assert span.duration > 0

    def test_shared_instance_stays_stateless(self):
        with NULL_TRACER.span("a"):
            with NULL_TRACER.span("b"):
                pass
        assert NULL_TRACER.roots == []
        assert Tracer().enabled and not NULL_TRACER.enabled


class TestSpanTraceDocument:
    def make_tracer(self):
        tracer = Tracer()
        with tracer.span("analyze.batch", changes=2):
            with tracer.span("pipeline.igp", spf_sources=3):
                pass
        return tracer

    def test_round_trips_byte_stably(self):
        document = self.make_tracer().to_dict()
        assert document["kind"] == "span-trace"
        assert document["schema_version"] == 1
        rebuilt = Tracer.from_dict(document)
        assert dumps(rebuilt.to_dict()) == dumps(document)
        assert rebuilt.find("pipeline.igp").labels == {"spf_sources": 3}

    def test_unknown_schema_version_rejected(self):
        document = self.make_tracer().to_dict()
        document["schema_version"] = 99
        with pytest.raises(SchemaError):
            Tracer.from_dict(document)

    def test_wrong_kind_rejected(self):
        document = self.make_tracer().to_dict()
        document["kind"] = "metrics"
        with pytest.raises(SchemaError):
            Tracer.from_dict(document)

    def test_chrome_trace_shape(self):
        chrome = self.make_tracer().to_chrome_trace()
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        assert [event["name"] for event in events] == [
            "analyze.batch", "pipeline.igp"
        ]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert event["ts"] >= 0
        assert events[1]["args"] == {"spf_sources": 3}
        # Chrome JSON is plain data, serializable as-is.
        json.dumps(chrome)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("calls")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("level")
        assert gauge.value is None
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_buckets(self):
        histogram = Histogram("sizes", bounds=[1, 10, 100])
        for value in (0, 1, 5, 10, 1000):
            histogram.observe(value)
        # <=1, <=10, <=100, overflow
        assert histogram.counts == [2, 2, 0, 1]
        assert histogram.count == 5
        assert histogram.low == 0 and histogram.high == 1000
        assert histogram.mean() == pytest.approx(1016 / 5)

    def test_histogram_merge_adds_buckets(self):
        a = Histogram("sizes", bounds=[1, 10])
        b = Histogram("sizes", bounds=[1, 10])
        a.observe(1)
        b.observe(5)
        b.observe(50)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.low == 1 and a.high == 50

    def test_histogram_merge_rejects_mismatched_bounds(self):
        a = Histogram("sizes", bounds=[1, 10])
        b = Histogram("sizes", bounds=[1, 10, 100])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=[10, 1])


class TestMetricsRegistry:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("analyze.calls").inc(2)
        registry.gauge("pipeline.atoms_total").set(21)
        registry.histogram("dirty.spf_sources").observe(6)
        return registry

    def test_get_or_create_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.is_empty() is False
        assert MetricsRegistry().is_empty() is True

    def test_counters_view_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        assert list(registry.counters().items()) == [("a", 2), ("b", 1)]

    def test_merge_semantics(self):
        left = self.make_registry()
        right = self.make_registry()
        right.gauge("pipeline.atoms_total").set(42)
        left.merge(right)
        assert left.counters()["analyze.calls"] == 4  # counters add
        assert left.gauge("pipeline.atoms_total").value == 42  # last wins
        assert left.histogram("dirty.spf_sources").count == 2  # buckets add

    def test_document_round_trips_byte_stably(self):
        document = self.make_registry().to_dict()
        assert document["kind"] == "metrics"
        assert document["schema_version"] == 1
        rebuilt = MetricsRegistry.from_dict(document)
        assert dumps(rebuilt.to_dict()) == dumps(document)

    def test_unknown_schema_version_rejected(self):
        document = self.make_registry().to_dict()
        document["schema_version"] = 99
        with pytest.raises(SchemaError):
            MetricsRegistry.from_dict(document)

    def test_merge_payload_is_the_cross_process_path(self):
        parent = MetricsRegistry()
        parent.merge_payload(self.make_registry().to_payload())
        parent.merge_payload(self.make_registry().to_payload())
        assert parent.counters()["analyze.calls"] == 4
        assert parent.histogram("dirty.spf_sources").count == 2


class TestAnalyzerIntegration:
    def test_default_tracer_is_null_and_timings_survive(self):
        network = Network.generate("ring", size=6)
        report = network.preview(ChangeSet().link_down("r0", "r1"))
        assert isinstance(network.tracer, NullTracer)
        assert network.tracer.roots == []
        # The compatibility views are fed from span durations/metrics
        # either way.
        for key in ("edits", "igp", "bgp", "fib", "reachability", "total"):
            assert report.timings[key] >= 0
        for key in ("spf_sources_recomputed", "fib_entries_updated",
                    "atoms_analyzed", "edits_batched"):
            assert key in report.counters

    def test_traced_analysis_attributes_stages(self):
        network = Network.generate("ring", size=6, trace=True)
        report = network.preview(ChangeSet().link_down("r0", "r1"))
        tracer = network.tracer
        assert tracer.enabled

        batch = tracer.find("analyze.batch")
        assert batch is not None
        stage_names = [child.name for child in batch.children]
        assert stage_names == [
            "analyze.edits", "pipeline.igp", "pipeline.bgp",
            "pipeline.fib", "pipeline.reachability",
        ]
        # Dirty-set sizes ride on the stage spans.
        igp = batch.find("pipeline.igp")
        assert igp.labels["spf_sources"] == 6
        assert igp.labels["touched_routers"] == 2
        assert batch.find("pipeline.fib").labels["entries_updated"] == (
            report.num_fib_changes()
        )
        assert "atoms_analyzed" in batch.find("pipeline.reachability").labels
        # fork.rollback rides inside the what-if batch span.
        assert tracer.find("fork.rollback") is not None

        # Acceptance: stage durations sum to the total within
        # tolerance (the total also covers fork setup/rollback).
        stage_sum = batch.child_time()
        assert stage_sum <= batch.duration
        assert stage_sum >= 0.5 * report.timings["total"]
        # Span durations ARE the timings view.
        assert report.timings["igp"] == igp.duration
        assert report.timings["edits"] == batch.find("analyze.edits").duration

    def test_timings_match_between_traced_and_untraced(self):
        traced = Network.generate("ring", size=6, trace=True)
        untraced = Network.generate("ring", size=6)
        change = ChangeSet().link_down("r0", "r1")
        traced_report = traced.preview(change)
        untraced_report = untraced.preview(change)
        assert sorted(traced_report.timings) == sorted(untraced_report.timings)
        assert traced_report.counters == untraced_report.counters

    def test_metrics_accumulate_across_analyses(self):
        network = Network.generate("ring", size=6)
        network.preview(ChangeSet().link_down("r0", "r1"))
        network.preview(ChangeSet().link_down("r2", "r3"))
        counters = network.metrics.counters()
        assert counters["analyze.calls"] == 2
        assert counters["fork.rollbacks"] == 2  # previews roll back
        assert counters["pipeline.passes"] == 2
        assert network.metrics.histogram("analyze.batch_size").count == 2

    def test_explicit_tracer_instance_is_adopted(self):
        tracer = Tracer()
        network = Network.generate("ring", size=6, trace=tracer)
        assert network.tracer is tracer
        network.preview(ChangeSet().link_down("r0", "r1"))
        assert tracer.find("analyze.batch") is not None

    def test_profile_document_is_versioned(self):
        network = Network.generate("ring", size=6, trace=True)
        network.preview(ChangeSet().link_down("r0", "r1"))
        document = network.profile()
        assert document["kind"] == "span-trace"
        rebuilt = Tracer.from_dict(document)
        assert dumps(rebuilt.to_dict()) == dumps(document)


class TestCampaignMetrics:
    def merged_metrics(self, jobs):
        network = Network.generate("ring", size=6)
        return network.campaign(
            all_single_link_failures(network.scenario),
            jobs=jobs,
            label="ring6",
        )

    def test_serial_and_parallel_merge_byte_identically(self):
        serial = self.merged_metrics(jobs=1)
        parallel = self.merged_metrics(jobs=2)
        assert serial.backend == "serial"
        assert parallel.backend == "multiprocessing"
        assert dumps(serial.metrics.to_dict()) == dumps(
            parallel.metrics.to_dict()
        )
        counters = serial.metrics.counters()
        assert counters["campaign.scenarios"] == len(serial)
        assert counters["analyze.calls"] == len(serial)
        assert counters["fork.rollbacks"] == len(serial)
        assert counters["pipeline.spf_sources_recomputed"] > 0

    def test_outcomes_carry_metric_snapshots(self):
        report = self.merged_metrics(jobs=1)
        for outcome in report.outcomes:
            assert outcome.metrics is not None
            assert outcome.metrics["counters"]["analyze.calls"] == 1

    def test_campaign_report_round_trips_metrics(self):
        report = self.merged_metrics(jobs=1)
        document = report.to_dict()
        from repro.campaign.report import CampaignReport

        rebuilt = CampaignReport.from_dict(document)
        assert dumps(rebuilt.to_dict()) == dumps(document)
        assert rebuilt.metrics.counters() == report.metrics.counters()

    def test_campaign_run_is_spanned_when_traced(self):
        network = Network.generate("ring", size=6, trace=True)
        network.campaign(
            all_single_link_failures(network.scenario), jobs=1, label="ring6"
        )
        span = network.tracer.find("campaign.run")
        assert span is not None
        assert span.labels["backend"] == "serial"
        assert span.labels["scenarios"] == 6
