"""Primitive edit semantics: application, validation, batching."""

import pytest

from repro.config.acl import AclAction, AclRule
from repro.config.routemap import RouteMapClause
from repro.config.routing import BgpNeighborConfig, StaticRouteConfig
from repro.core.change import (
    AddAclRule,
    AddBgpNeighbor,
    AddRouteMapClause,
    AddStaticRoute,
    AnnouncePrefix,
    BindAcl,
    Change,
    ChangeError,
    DisableOspfInterface,
    EnableInterface,
    EnableOspfInterface,
    LinkDown,
    LinkUp,
    RemoveAclRule,
    RemoveBgpNeighbor,
    RemoveRouteMapClause,
    RemoveStaticRoute,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
    WithdrawPrefix,
)
from repro.net.addr import IPv4Address, Prefix
from repro.workloads.scenarios import internet2_bgp, line_static, ring_ospf


@pytest.fixture()
def ring():
    return ring_ospf(4).snapshot.clone()


@pytest.fixture()
def wan():
    return internet2_bgp().snapshot.clone()


class TestLinkEdits:
    def test_down_then_up(self, ring):
        LinkDown("r0", "r1").apply(ring)
        assert ring.topology.num_links() == 3
        LinkUp("r0", "r1").apply(ring)
        assert ring.topology.num_links() == 4

    def test_down_unknown_pair(self, ring):
        with pytest.raises(ChangeError, match="no link"):
            LinkDown("r0", "r2").apply(ring)

    def test_down_by_interfaces(self, ring):
        link = ring.topology.find_link("r0", "r1")
        (r1, i1), (r2, i2) = link.side_a, link.side_b
        LinkDown(r1, r2, i1, i2).apply(ring)
        assert not ring.topology.link_enabled(link)


class TestInterfaceEdits:
    def test_shutdown_twice_rejected(self, ring):
        ShutdownInterface("r0", "eth0").apply(ring)
        with pytest.raises(ChangeError, match="already shut"):
            ShutdownInterface("r0", "eth0").apply(ring)

    def test_enable_when_up_rejected(self, ring):
        with pytest.raises(ChangeError, match="already up"):
            EnableInterface("r0", "eth0").apply(ring)

    def test_unknown_interface(self, ring):
        with pytest.raises(ChangeError, match="no interface"):
            ShutdownInterface("r0", "eth99").apply(ring)


class TestStaticEdits:
    def test_add_duplicate_rejected(self, ring):
        route = StaticRouteConfig(Prefix("10.99.0.0/24"), drop=True)
        AddStaticRoute("r0", route).apply(ring)
        with pytest.raises(ChangeError, match="duplicate"):
            AddStaticRoute("r0", route).apply(ring)

    def test_remove_missing_rejected(self, ring):
        route = StaticRouteConfig(Prefix("10.99.0.0/24"), drop=True)
        with pytest.raises(ChangeError, match="not present"):
            RemoveStaticRoute("r0", route).apply(ring)


class TestOspfEdits:
    def test_cost_on_unconfigured_interface(self, ring):
        with pytest.raises(ChangeError, match="does not run OSPF"):
            SetOspfCost("r0", "eth99", 5).apply(ring)

    def test_cost_floor(self, ring):
        with pytest.raises(ChangeError, match=">= 1"):
            SetOspfCost("r0", "eth0", 0).apply(ring)

    def test_enable_disable_cycle(self, ring):
        DisableOspfInterface("r0", "eth0").apply(ring)
        with pytest.raises(ChangeError):
            DisableOspfInterface("r0", "eth0").apply(ring)
        # Re-enable replaces the settings wholesale.
        EnableOspfInterface("r0", "eth0", area=0, cost=7).apply(ring)
        assert ring.config("r0").ospf.interfaces["eth0"].cost == 7
        with pytest.raises(ChangeError, match="already runs"):
            EnableOspfInterface("r0", "eth0").apply(ring)


class TestBgpEdits:
    def test_announce_requires_bgp(self, ring):
        with pytest.raises(ChangeError, match="does not run BGP"):
            AnnouncePrefix("r0", Prefix("10.0.0.0/24")).apply(ring)

    def test_announce_withdraw_cycle(self, wan):
        prefix = Prefix("10.254.50.0/24")
        AnnouncePrefix("cust_seat0", prefix).apply(wan)
        with pytest.raises(ChangeError, match="already originates"):
            AnnouncePrefix("cust_seat0", prefix).apply(wan)
        WithdrawPrefix("cust_seat0", prefix).apply(wan)
        with pytest.raises(ChangeError, match="does not originate"):
            WithdrawPrefix("cust_seat0", prefix).apply(wan)

    def test_neighbor_add_remove(self, wan):
        peer_ip = IPv4Address("10.200.99.1")
        neighbor = BgpNeighborConfig(peer_ip=peer_ip, remote_asn=65099)
        AddBgpNeighbor("SEAT", neighbor).apply(wan)
        with pytest.raises(ChangeError, match="duplicate"):
            AddBgpNeighbor("SEAT", neighbor).apply(wan)
        RemoveBgpNeighbor("SEAT", peer_ip).apply(wan)
        with pytest.raises(ChangeError, match="no BGP neighbor"):
            RemoveBgpNeighbor("SEAT", peer_ip).apply(wan)

    def test_local_pref_missing_map(self, wan):
        with pytest.raises(ChangeError, match="no route-map"):
            SetLocalPref("SEAT", "GHOST", 10, 100).apply(wan)

    def test_route_map_clause_cycle(self, wan):
        clause = RouteMapClause(seq=99, set_local_pref=5)
        AddRouteMapClause("SEAT", "NEWMAP", clause).apply(wan)
        with pytest.raises(ChangeError, match="already has clause"):
            AddRouteMapClause("SEAT", "NEWMAP", clause).apply(wan)
        RemoveRouteMapClause("SEAT", "NEWMAP", 99).apply(wan)
        with pytest.raises(ChangeError, match="no clause"):
            RemoveRouteMapClause("SEAT", "NEWMAP", 99).apply(wan)


class TestAclEdits:
    RULE = AclRule(AclAction.DENY, dst=Prefix("172.16.1.0/24"))

    def test_add_creates_acl(self, ring):
        AddAclRule("r0", "NEW", self.RULE).apply(ring)
        assert ring.config("r0").acls["NEW"].rules == [self.RULE]

    def test_position_validation(self, ring):
        with pytest.raises(ChangeError, match="out of range"):
            AddAclRule("r0", "NEW", self.RULE, position=3).apply(ring)

    def test_remove_missing(self, ring):
        with pytest.raises(ChangeError, match="no acl"):
            RemoveAclRule("r0", "GHOST", self.RULE).apply(ring)
        AddAclRule("r0", "NEW", self.RULE).apply(ring)
        RemoveAclRule("r0", "NEW", self.RULE).apply(ring)
        with pytest.raises(ChangeError, match="no rule"):
            RemoveAclRule("r0", "NEW", self.RULE).apply(ring)

    def test_bind_validation(self, ring):
        with pytest.raises(ChangeError, match="bad ACL direction"):
            BindAcl("r0", "eth0", "X", "sideways").apply(ring)
        with pytest.raises(ChangeError, match="no interface"):
            BindAcl("r0", "eth99", "X", "out").apply(ring)


class TestBatches:
    def test_atomic_application_order(self):
        snapshot = line_static(3).snapshot.clone()
        change = Change.of(
            AddAclRule("r1", "F", AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0"))),
            BindAcl("r1", "eth1", "F", "out"),
            label="ordered",
        )
        change.apply(snapshot)
        assert snapshot.config("r1").interface_config("eth1").acl_out == "F"

    def test_applied_to_copy_leaves_original(self):
        snapshot = line_static(3).snapshot
        change = Change.of(LinkDown("r0", "r1"))
        copy = change.applied_to_copy(snapshot)
        assert snapshot.topology.num_links() == 2
        assert copy.topology.num_links() == 1

    def test_describe(self):
        change = Change.of(LinkDown("a", "b"), label="maintenance")
        text = change.describe()
        assert "maintenance" in text and "link down" in text
