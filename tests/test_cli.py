"""The CLI rides the api facade; ``--json`` emits the versioned schema.

Acceptance: ``repro analyze --json`` and ``repro campaign --json``
emit schema-versioned JSON that ``from_dict`` round-trips byte-stably.
"""

import json

import pytest

from repro import cli
from repro.campaign.report import CampaignReport
from repro.core.delta import DeltaReport
from repro.core.serialize import SCHEMA_VERSION
from repro.query.trace import PacketTrace


@pytest.fixture()
def demo_dir(tmp_path, capsys):
    directory = str(tmp_path / "demo")
    assert cli.main(["demo", directory, "--topology", "ring", "--size", "6"]) == 0
    capsys.readouterr()  # swallow the demo chatter
    return directory


def run_json(capsys, argv):
    code = cli.main(argv)
    output = capsys.readouterr().out
    return code, json.loads(output), output


class TestAnalyzeJson:
    def test_round_trips_byte_stably(self, demo_dir, capsys):
        code, document, _ = run_json(
            capsys, ["analyze", demo_dir, f"{demo_dir}/change.dna", "--json"]
        )
        assert code == 0
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "delta-report"
        rebuilt = DeltaReport.from_dict(document)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            document, sort_keys=True
        )
        assert rebuilt.num_fib_changes() > 0

    def test_baseline_agreement_in_json_mode(self, demo_dir, capsys):
        code, document, _ = run_json(
            capsys,
            ["analyze", demo_dir, f"{demo_dir}/change.dna",
             "--json", "--baseline"],
        )
        assert code == 0  # exit 1 would mean baseline disagreement
        assert document["kind"] == "delta-report"


class TestTraceJson:
    def test_round_trips_byte_stably(self, demo_dir, capsys):
        code, document, _ = run_json(
            capsys, ["trace", demo_dir, "r0", "172.16.3.1", "--json"]
        )
        assert code == 0  # delivered
        assert document["kind"] == "packet-trace"
        rebuilt = PacketTrace.from_dict(document)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            document, sort_keys=True
        )


class TestCampaignJson:
    def test_round_trips_byte_stably(self, capsys):
        code, document, _ = run_json(
            capsys,
            ["campaign", "links", "--scenario", "ring", "--size", "6",
             "--json"],
        )
        assert code == 0
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "campaign-report"
        rebuilt = CampaignReport.from_dict(document)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            document, sort_keys=True
        )
        assert len(rebuilt) == 6  # one scenario per ring link

    def test_invariant_flag_uses_registry(self, capsys):
        code = cli.main(
            ["campaign", "links", "--scenario", "ring", "--size", "6",
             "--invariant", "loop-freedom", "--top", "3"]
        )
        capsys.readouterr()
        assert code == 0

    def test_unknown_invariant_name_fails_cleanly(self, capsys):
        with pytest.raises(SystemExit, match="unknown invariant"):
            cli.main(
                ["campaign", "links", "--scenario", "ring", "--size", "6",
                 "--invariant", "nonsense"]
            )


class TestTextModeStillWorks:
    def test_show(self, demo_dir, capsys):
        assert cli.main(["show", demo_dir]) == 0
        assert "converged:" in capsys.readouterr().out

    def test_analyze_text(self, demo_dir, capsys):
        code = cli.main(["analyze", demo_dir, f"{demo_dir}/change.dna"])
        assert code == 0
        assert "FIB" in capsys.readouterr().out
