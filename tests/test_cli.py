"""The CLI rides the api facade; ``--json`` emits one uniform envelope.

Acceptance: every ``--json`` command emits
``{"kind", "schema_version", "result"}`` where ``result`` is the
schema-versioned document that ``from_dict`` round-trips byte-stably.
"""

import json

import pytest

from repro import cli
from repro.campaign.report import CampaignReport
from repro.core.delta import DeltaReport
from repro.core.serialize import SCHEMA_VERSION, check_envelope
from repro.query.trace import PacketTrace


@pytest.fixture()
def demo_dir(tmp_path, capsys):
    directory = str(tmp_path / "demo")
    assert cli.main(["demo", directory, "--topology", "ring", "--size", "6"]) == 0
    capsys.readouterr()  # swallow the demo chatter
    return directory


def run_json(capsys, argv):
    """Run a --json command; returns (code, result document, envelope)."""
    code = cli.main(argv)
    output = capsys.readouterr().out
    envelope = json.loads(output)
    return code, check_envelope(envelope), envelope


class TestAnalyzeJson:
    def test_round_trips_byte_stably(self, demo_dir, capsys):
        code, document, envelope = run_json(
            capsys, ["analyze", demo_dir, f"{demo_dir}/change.dna", "--json"]
        )
        assert code == 0
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert envelope["kind"] == "delta-report"
        assert document["kind"] == "delta-report"
        rebuilt = DeltaReport.from_dict(document)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            document, sort_keys=True
        )
        assert rebuilt.num_fib_changes() > 0

    def test_baseline_agreement_in_json_mode(self, demo_dir, capsys):
        code, document, _ = run_json(
            capsys,
            ["analyze", demo_dir, f"{demo_dir}/change.dna",
             "--json", "--baseline"],
        )
        assert code == 0  # exit 1 would mean baseline disagreement
        assert document["kind"] == "delta-report"


class TestTraceJson:
    def test_round_trips_byte_stably(self, demo_dir, capsys):
        code, document, _ = run_json(
            capsys, ["trace", demo_dir, "r0", "172.16.3.1", "--json"]
        )
        assert code == 0  # delivered
        assert document["kind"] == "packet-trace"
        rebuilt = PacketTrace.from_dict(document)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            document, sort_keys=True
        )


class TestCampaignJson:
    def test_round_trips_byte_stably(self, capsys):
        code, document, envelope = run_json(
            capsys,
            ["campaign", "links", "--scenario", "ring", "--size", "6",
             "--json"],
        )
        assert code == 0
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert document["kind"] == "campaign-report"
        rebuilt = CampaignReport.from_dict(document)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            document, sort_keys=True
        )
        assert len(rebuilt) == 6  # one scenario per ring link

    def test_invariant_flag_uses_registry(self, capsys):
        code = cli.main(
            ["campaign", "links", "--scenario", "ring", "--size", "6",
             "--invariant", "loop-freedom", "--top", "3"]
        )
        capsys.readouterr()
        assert code == 0

    def test_unknown_invariant_name_fails_cleanly(self, capsys):
        with pytest.raises(SystemExit, match="unknown invariant"):
            cli.main(
                ["campaign", "links", "--scenario", "ring", "--size", "6",
                 "--invariant", "nonsense"]
            )


class TestExplainJson:
    def test_envelope_wraps_explain_answer(self, demo_dir, capsys):
        code, document, envelope = run_json(
            capsys,
            ["explain", demo_dir, f"{demo_dir}/change.dna",
             "--edit", "0", "--json"],
        )
        assert code == 0
        assert envelope["kind"] == "explain-answer"
        assert document["kind"] == "explain-answer"
        assert document["edit"]["edit"]["id"] == 0


class TestTextModeStillWorks:
    def test_show(self, demo_dir, capsys):
        assert cli.main(["show", demo_dir]) == 0
        assert "converged:" in capsys.readouterr().out

    def test_analyze_text(self, demo_dir, capsys):
        code = cli.main(["analyze", demo_dir, f"{demo_dir}/change.dna"])
        assert code == 0
        assert "FIB" in capsys.readouterr().out
