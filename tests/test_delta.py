"""Delta report: churn collapsing and reachability canonicalization."""

from repro.controlplane.rib import NextHop, Route
from repro.core.delta import (
    DeltaReport,
    ReachSegment,
    coalesce_segments,
    diff_reach_coverage,
)
from repro.dataplane.atoms import Atom
from repro.dataplane.reachability import AtomReachability
from repro.net.addr import Prefix


def route(metric: int) -> Route:
    return Route(
        prefix=Prefix("10.0.0.0/24"),
        protocol="ospf",
        admin_distance=110,
        metric=metric,
        next_hops=frozenset({NextHop(interface="eth0", neighbor="b")}),
    )


def reach(lo: int, hi: int, pairs: set[tuple[str, str]], loops=(), blackholes=()):
    sources: dict[str, set[str]] = {}
    for src, owner in pairs:
        sources.setdefault(owner, set()).add(src)
    return AtomReachability(
        atom=Atom(lo, hi),
        owners=frozenset(sources),
        sources={owner: frozenset(s) for owner, s in sources.items()},
        loop_routers=frozenset(loops),
        blackhole_routers=frozenset(blackholes),
        mixed_routers=frozenset(),
    )


class TestRecording:
    def test_rib_churn_collapses(self):
        report = DeltaReport()
        prefix = Prefix("10.0.0.0/24")
        report.record_rib("r", prefix, route(1), route(2))
        report.record_rib("r", prefix, route(2), route(1))
        assert report.num_rib_changes() == 0
        assert report.is_empty()

    def test_rib_transitions_compose(self):
        report = DeltaReport()
        prefix = Prefix("10.0.0.0/24")
        report.record_rib("r", prefix, route(1), route(2))
        report.record_rib("r", prefix, route(2), route(3))
        assert report.rib_changes["r"][prefix] == (route(1), route(3))

    def test_fib_none_transitions(self):
        from repro.dataplane.fib import FibEntry

        report = DeltaReport()
        prefix = Prefix("10.0.0.0/24")
        entry = FibEntry(prefix, frozenset({NextHop(interface="eth0")}))
        report.record_fib("r", prefix, None, entry)
        assert report.num_fib_changes() == 1
        report.record_fib("r", prefix, entry, None)
        assert report.num_fib_changes() == 0


class TestReachDiff:
    def test_identical_coverage_empty(self):
        piece = [(0, 100, reach(0, 100, {("a", "b")}))]
        assert diff_reach_coverage(piece, piece) == []

    def test_pair_gain_and_loss(self):
        before = [(0, 100, reach(0, 100, {("a", "b")}))]
        after = [(0, 100, reach(0, 100, {("c", "b")}))]
        (segment,) = diff_reach_coverage(before, after)
        assert segment.added == {("c", "b")}
        assert segment.removed == {("a", "b")}

    def test_different_boundaries_recut(self):
        before = [(0, 100, reach(0, 100, {("a", "b")}))]
        after = [
            (0, 50, reach(0, 50, {("a", "b")})),
            (50, 100, reach(50, 100, set())),
        ]
        (segment,) = diff_reach_coverage(before, after)
        assert (segment.lo, segment.hi) == (50, 100)
        assert segment.removed == {("a", "b")}

    def test_one_sided_regions_skipped(self):
        before = [(0, 50, reach(0, 50, {("a", "b")}))]
        after = [
            (0, 50, reach(0, 50, {("a", "b")})),
            (50, 100, reach(50, 100, {("x", "y")})),
        ]
        assert diff_reach_coverage(before, after) == []

    def test_loops_and_blackholes_tracked(self):
        before = [(0, 10, reach(0, 10, set(), loops={"r1"}))]
        after = [(0, 10, reach(0, 10, set(), blackholes={"r2"}))]
        (segment,) = diff_reach_coverage(before, after)
        assert segment.loops_removed == {"r1"}
        assert segment.blackholes_added == {"r2"}

    def test_coalesce_adjacent_equal(self):
        segments = [
            ReachSegment(0, 10, added=frozenset({("a", "b")})),
            ReachSegment(10, 20, added=frozenset({("a", "b")})),
            ReachSegment(30, 40, added=frozenset({("a", "b")})),
        ]
        merged = coalesce_segments(segments)
        assert [(s.lo, s.hi) for s in merged] == [(0, 20), (30, 40)]

    def test_coalesce_respects_payload(self):
        segments = [
            ReachSegment(0, 10, added=frozenset({("a", "b")})),
            ReachSegment(10, 20, removed=frozenset({("a", "b")})),
        ]
        assert len(coalesce_segments(segments)) == 2


class TestSignature:
    def test_signatures_equal_for_equal_reports(self):
        a, b = DeltaReport("x"), DeltaReport("y")
        prefix = Prefix("10.0.0.0/24")
        for report in (a, b):
            report.record_rib("r", prefix, None, route(1))
            report.reach_segments = [
                ReachSegment(0, 10, added=frozenset({("a", "b")}))
            ]
        assert a.behavior_signature() == b.behavior_signature()

    def test_summary_renders(self):
        report = DeltaReport("demo")
        report.reach_segments = [ReachSegment(0, 10, added=frozenset({("a", "b")}))]
        text = report.summary()
        assert "demo" in text and "+1/-0" in text
