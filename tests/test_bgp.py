"""BGP: sessions, decision process, policies, propagation."""

import pytest

from repro.config.routemap import (
    AttributeBundle,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.config.routing import BgpConfig, BgpNeighborConfig
from repro.controlplane.bgp import (
    BgpCandidate,
    BgpConvergenceError,
    _decision,
    collect_origins,
    discover_sessions,
    solve_prefix,
)
from repro.controlplane.connected import AddressIndex
from repro.controlplane.simulation import simulate
from repro.core.change import LinkDown
from repro.core.snapshot import Snapshot
from repro.net.addr import IPv4Address, Prefix
from repro.topology.generators import line
from repro.workloads.scenarios import internet2_bgp


def ebgp_chain(n: int, asn_base: int = 65000) -> Snapshot:
    """n routers in a line, each its own AS, eBGP between neighbours;
    r0 originates 172.20.0.0/24."""
    fabric = line(n)
    snapshot = Snapshot(topology=fabric.topology)
    for index in range(n):
        router = f"r{index}"
        config = snapshot.config(router)
        router_id = snapshot.topology.router(router).interface("lo0").address
        config.bgp = BgpConfig(asn=asn_base + index, router_id=router_id)
        for direction, interface in (("left", "eth0"), ("right", "eth1")):
            peer = snapshot.topology.interface_peer(router, interface) if (
                interface in snapshot.topology.router(router).interfaces
            ) else None
            if peer is None:
                continue
            peer_index = int(peer.router[1:])
            config.bgp.add_neighbor(
                BgpNeighborConfig(
                    peer_ip=peer.address, remote_asn=asn_base + peer_index
                )
            )
    snapshot.config("r0").bgp.originated.append(Prefix("172.20.0.0/24"))
    return snapshot


class TestSessionDiscovery:
    def test_chain_sessions(self):
        snapshot = ebgp_chain(3)
        sessions = discover_sessions(snapshot, AddressIndex(snapshot))
        # Two links, each with two directions.
        assert len(sessions) == 4
        assert all(s.ebgp and s.direct for s in sessions)

    def test_asn_mismatch_blocks_session(self):
        snapshot = ebgp_chain(2)
        # r0 believes r1 is AS 99.
        peer_ip = next(iter(snapshot.config("r0").bgp.neighbors))
        snapshot.config("r0").bgp.neighbors[peer_ip].remote_asn = 99
        sessions = discover_sessions(snapshot, AddressIndex(snapshot))
        assert sessions == []

    def test_one_sided_config_blocks_session(self):
        snapshot = ebgp_chain(2)
        snapshot.config("r1").bgp.neighbors.clear()
        sessions = discover_sessions(snapshot, AddressIndex(snapshot))
        assert sessions == []

    def test_downed_link_blocks_direct_session(self):
        snapshot = ebgp_chain(2)
        LinkDown("r0", "r1").apply(snapshot)
        sessions = discover_sessions(snapshot, AddressIndex(snapshot))
        assert sessions == []


class _ZeroIgp:
    def cost_to(self, _router, _address):
        return 0.0


class TestPropagation:
    def solve(self, snapshot, prefix=Prefix("172.20.0.0/24")):
        sessions = discover_sessions(snapshot, AddressIndex(snapshot))
        origins = collect_origins(snapshot)[prefix]
        return solve_prefix(snapshot, prefix, origins, sessions, _ZeroIgp())

    def test_chain_propagation_and_as_path(self):
        snapshot = ebgp_chain(4)
        solution = self.solve(snapshot)
        assert set(solution.best) == {"r0", "r1", "r2", "r3"}
        assert solution.best["r3"].bundle.as_path == (65002, 65001, 65000)

    def test_next_hop_is_sender_interface(self):
        snapshot = ebgp_chain(3)
        solution = self.solve(snapshot)
        r0_eth1 = snapshot.topology.router("r0").interface("eth1")
        assert solution.best["r1"].next_hop == r0_eth1.address

    def test_export_policy_blocks(self):
        snapshot = ebgp_chain(3)
        config = snapshot.config("r1")
        config.route_maps["NONE"] = RouteMap("NONE", [])  # implicit deny all
        peer2 = snapshot.topology.router("r1").interface("eth1")
        r2_ip = snapshot.topology.interface_peer("r1", "eth1").address
        config.bgp.neighbors[r2_ip].export_policy = "NONE"
        solution = self.solve(snapshot)
        assert "r2" not in solution.best

    def test_import_policy_sets_local_pref(self):
        snapshot = ebgp_chain(2)
        config = snapshot.config("r1")
        config.prefix_lists["ALL"] = PrefixList(
            "ALL", [PrefixListEntry(prefix=Prefix("0.0.0.0/0"), le=32)]
        )
        config.route_maps["LP"] = RouteMap(
            "LP",
            [RouteMapClause(seq=10, match_prefix_list="ALL", set_local_pref=321)],
        )
        r0_ip = snapshot.topology.interface_peer("r1", "eth0").address
        config.bgp.neighbors[r0_ip].import_policy = "LP"
        solution = self.solve(snapshot)
        assert solution.best["r1"].bundle.local_pref == 321

    def test_as_path_loop_rejected(self):
        # Ring of 3 ASes: announcements must not loop forever, and no
        # router may accept a path containing its own ASN.
        from repro.topology.generators import ring

        fabric = ring(3)
        snapshot = Snapshot(topology=fabric.topology)
        for index in range(3):
            router = f"r{index}"
            config = snapshot.config(router)
            config.bgp = BgpConfig(
                asn=65000 + index,
                router_id=snapshot.topology.router(router).interface("lo0").address,
            )
        for index in range(3):
            router = f"r{index}"
            for neighbor, link in snapshot.topology.neighbors(router):
                local_if = link.endpoint_on(router)[1]
                peer = snapshot.topology.interface_peer(router, local_if)
                snapshot.config(router).bgp.add_neighbor(
                    BgpNeighborConfig(
                        peer_ip=peer.address,
                        remote_asn=65000 + int(neighbor[1:]),
                    )
                )
        snapshot.config("r0").bgp.originated.append(Prefix("172.20.0.0/24"))
        sessions = discover_sessions(snapshot, AddressIndex(snapshot))
        origins = collect_origins(snapshot)[Prefix("172.20.0.0/24")]
        solution = solve_prefix(
            snapshot, Prefix("172.20.0.0/24"), origins, sessions, _ZeroIgp()
        )
        for router, candidate in solution.best.items():
            config = snapshot.configs[router]
            assert config.bgp.asn not in candidate.bundle.as_path

    def test_convergence_guard(self):
        snapshot = ebgp_chain(3)
        sessions = discover_sessions(snapshot, AddressIndex(snapshot))
        origins = collect_origins(snapshot)[Prefix("172.20.0.0/24")]
        with pytest.raises(BgpConvergenceError):
            solve_prefix(
                snapshot,
                Prefix("172.20.0.0/24"),
                origins,
                sessions,
                _ZeroIgp(),
                max_rounds=0,
            )


class TestDecision:
    def candidate(self, **overrides) -> BgpCandidate:
        fields = dict(
            bundle=AttributeBundle(prefix=Prefix("10.0.0.0/24")),
            next_hop=IPv4Address("10.0.0.1"),
            from_peer="peer",
            ebgp=True,
            peer_router_id=1,
        )
        fields.update(overrides)
        return BgpCandidate(**fields)

    def test_local_pref_dominates_path_length(self):
        short = self.candidate(
            bundle=AttributeBundle(prefix=Prefix("10.0.0.0/24"), as_path=(1,), local_pref=100)
        )
        long_preferred = self.candidate(
            bundle=AttributeBundle(
                prefix=Prefix("10.0.0.0/24"), as_path=(1, 2, 3), local_pref=200
            ),
            from_peer="other",
        )
        best = _decision("me", {"a": short, "b": long_preferred}, _ZeroIgp())
        assert best is long_preferred

    def test_path_length_dominates_med(self):
        short_high_med = self.candidate(
            bundle=AttributeBundle(prefix=Prefix("10.0.0.0/24"), as_path=(1,), med=99)
        )
        long_low_med = self.candidate(
            bundle=AttributeBundle(prefix=Prefix("10.0.0.0/24"), as_path=(1, 2), med=0),
            from_peer="other",
        )
        best = _decision("me", {"a": short_high_med, "b": long_low_med}, _ZeroIgp())
        assert best is short_high_med

    def test_ebgp_preferred_over_ibgp(self):
        ibgp = self.candidate(ebgp=False)
        ebgp = self.candidate(from_peer="other", ebgp=True)
        best = _decision("me", {"a": ibgp, "b": ebgp}, _ZeroIgp())
        assert best is ebgp

    def test_local_origination_wins(self):
        local = self.candidate(from_peer=None, next_hop=None, ebgp=False)
        learned = self.candidate()
        best = _decision("me", {"a": local, "b": learned}, _ZeroIgp())
        assert best is local

    def test_unreachable_next_hop_excluded(self):
        class DeadIgp:
            def cost_to(self, _router, _address):
                return float("inf")

        candidate = self.candidate()
        assert _decision("me", {"a": candidate}, DeadIgp()) is None

    def test_igp_cost_tiebreak(self):
        class CostIgp:
            def cost_to(self, _router, address):
                return 5.0 if address == IPv4Address("10.0.0.1") else 1.0

        near = self.candidate(next_hop=IPv4Address("10.0.0.2"), from_peer="near")
        far = self.candidate(next_hop=IPv4Address("10.0.0.1"), from_peer="far")
        best = _decision("me", {"a": far, "b": near}, CostIgp())
        assert best is near


class TestInternet2Integration:
    def test_dual_homed_prefers_high_local_pref(self):
        scenario = internet2_bgp()
        state = simulate(scenario.snapshot)
        prefix = scenario.fabric.host_subnets["cust_dual"][0]
        solution = state.bgp_solutions[prefix]
        # SEAT imports at local-pref 200: every WAN router should pick
        # the SEAT-learned path.
        assert solution.best["SEAT"].bundle.local_pref == 200
        for pop in ("CHIC", "NEWY", "WASH"):
            assert solution.best[pop].bundle.local_pref == 200

    def test_ibgp_next_hop_self(self):
        scenario = internet2_bgp()
        state = simulate(scenario.snapshot)
        prefix = scenario.fabric.host_subnets["cust_seat0"][0]
        solution = state.bgp_solutions[prefix]
        seat_loopback = scenario.topology.router("SEAT").interface("lo0").address
        assert solution.best["CHIC"].next_hop == seat_loopback

    def test_customer_learns_other_customers(self):
        scenario = internet2_bgp()
        state = simulate(scenario.snapshot)
        prefix = scenario.fabric.host_subnets["cust_newy0"][0]
        rib = state.ribs["cust_seat0"]
        assert rib.best(prefix) is not None
        assert rib.best(prefix).protocol == "bgp"
