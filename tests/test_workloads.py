"""Scenario builders and change generators."""

import pytest

from repro.controlplane.simulation import simulate
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import (
    fat_tree_ospf,
    internet2_bgp,
    line_static,
    random_ospf,
    ring_ospf,
)


class TestScenarios:
    def test_fat_tree_full_reachability(self):
        scenario = fat_tree_ospf(4)
        state = simulate(scenario.snapshot, precompute_reachability=True)
        routers = scenario.topology.num_routers()
        for edge, subnets in scenario.fabric.host_subnets.items():
            for subnet in subnets:
                atom = state.dataplane.atom_table.atom_containing(subnet.first + 1)
                reach = state.reachability.for_atom(atom)
                assert reach.owners == {edge}
                assert len(reach.sources[edge]) == routers

    def test_internet2_customers_reach_each_other(self):
        scenario = internet2_bgp()
        state = simulate(scenario.snapshot, precompute_reachability=True)
        subnet = scenario.fabric.host_subnets["cust_dual"][0]
        atom = state.dataplane.atom_table.atom_containing(subnet.first + 1)
        reach = state.reachability.for_atom(atom)
        assert "cust_newy0" in reach.sources["cust_dual"]

    def test_line_static_symmetric(self):
        scenario = line_static(4)
        state = simulate(scenario.snapshot, precompute_reachability=True)
        for owner, subnets in scenario.fabric.host_subnets.items():
            atom = state.dataplane.atom_table.atom_containing(
                subnets[0].first + 1
            )
            reach = state.reachability.for_atom(atom)
            assert len(reach.sources[owner]) == 4

    def test_geant_full_reachability(self):
        from repro.workloads.scenarios import geant_ospf

        scenario = geant_ospf()
        state = simulate(scenario.snapshot, precompute_reachability=True)
        routers = scenario.topology.num_routers()
        assert routers == 22
        subnet = scenario.fabric.host_subnets["ATH"][0]
        atom = state.dataplane.atom_table.atom_containing(subnet.first + 1)
        reach = state.reachability.for_atom(atom)
        assert len(reach.sources["ATH"]) == routers

    def test_geant_oracle_on_link_flap(self):
        from repro.core.analyzer import DifferentialNetworkAnalyzer
        from repro.core.oracle import EquivalenceOracle
        from repro.workloads.scenarios import geant_ospf

        scenario = geant_ospf()
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        generator = ChangeGenerator(scenario, seed=31)
        down, up = generator.random_link_failure()
        oracle.step(down)
        oracle.step(up)
        assert oracle.stats.pass_rate == 1.0

    def test_random_ospf_connected(self):
        scenario = random_ospf(10, 8, seed=5)
        state = simulate(scenario.snapshot, precompute_reachability=True)
        subnet = scenario.fabric.host_subnets["r0"][0]
        atom = state.dataplane.atom_table.atom_containing(subnet.first + 1)
        reach = state.reachability.for_atom(atom)
        assert len(reach.sources["r0"]) == 10

    def test_scenarios_deterministic(self):
        a = fat_tree_ospf(4)
        b = fat_tree_ospf(4)
        from repro.config.text import serialize_configs

        assert serialize_configs(a.snapshot.configs) == serialize_configs(
            b.snapshot.configs
        )


class TestChangeGenerator:
    def test_link_failure_pair_applies_cleanly(self, ring8_scenario):
        import copy

        scenario = copy.copy(ring8_scenario)
        scenario.snapshot = ring8_scenario.snapshot.clone()
        generator = ChangeGenerator(scenario, seed=1)
        down, up = generator.random_link_failure()
        down.apply(scenario.snapshot)
        up.apply(scenario.snapshot)
        assert scenario.snapshot.topology.num_links() == 8

    def test_static_batch_size(self, ring8_scenario):
        generator = ChangeGenerator(ring8_scenario, seed=2)
        add, remove = generator.static_batch(5)
        assert len(add) == 5 and len(remove) == 5

    def test_fresh_prefixes_never_repeat(self, ring8_scenario):
        generator = ChangeGenerator(ring8_scenario, seed=3)
        seen = set()
        for _ in range(20):
            prefix = generator._fresh_prefix()
            assert prefix not in seen
            seen.add(prefix)

    def test_acl_block_targets_host_subnet(self, random12_scenario):
        import copy

        scenario = copy.copy(random12_scenario)
        scenario.snapshot = random12_scenario.snapshot.clone()
        generator = ChangeGenerator(scenario, seed=4)
        block, unblock = generator.random_acl_block()
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
        analyzer.analyze(block)
        report = analyzer.analyze(unblock)
        # Unblock restores: net effect of the pair is zero.
        assert analyzer.state.dataplane.atom_table.num_atoms() > 0

    def test_prefix_flap_requires_customers(self, ring8_scenario):
        generator = ChangeGenerator(ring8_scenario, seed=5)
        with pytest.raises(ValueError, match="customers"):
            generator.random_prefix_flap()

    def test_pref_flip_requires_dual_homed(self, ring8_scenario):
        generator = ChangeGenerator(ring8_scenario, seed=6)
        with pytest.raises(ValueError, match="dual-homed"):
            generator.dual_homed_pref_flip()

    def test_core_links_exclude_customer_uplinks(self, internet2_scenario):
        generator = ChangeGenerator(internet2_scenario, seed=7)
        for link in generator._core_links():
            roles = {
                internet2_scenario.fabric.roles.get(router)
                for router in link.routers
            }
            assert "customer" not in roles
