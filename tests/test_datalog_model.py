"""The Datalog network model vs. the specialized data-plane analysis."""

from repro.controlplane.datalog_model import (
    DatalogReachability,
    forwarding_facts,
    reachability_program,
)
from repro.controlplane.simulation import simulate
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, LinkDown, LinkUp
from repro.workloads.scenarios import fat_tree_ospf, line_static, ring_ospf


class TestStaticValidation:
    def test_matches_dataplane_on_ring(self):
        state = simulate(ring_ospf(6).snapshot)
        model = DatalogReachability(state.dataplane)
        assert model.validate_against_dataplane()

    def test_matches_dataplane_on_fat_tree(self):
        state = simulate(fat_tree_ospf(4).snapshot)
        model = DatalogReachability(state.dataplane)
        assert model.validate_against_dataplane()

    def test_program_shape(self):
        program = reachability_program()
        assert program.stratum_is_recursive(program.stratum_of["reach"])
        assert program.edb_relations() == {"fwd", "delivers"}

    def test_facts_cover_owners(self):
        scenario = line_static(3)
        state = simulate(scenario.snapshot)
        _fwd, delivers = forwarding_facts(state.dataplane)
        target = scenario.fabric.host_subnets["r2"][0]
        atom = state.dataplane.atom_table.atom_containing(target.first + 1)
        assert ((atom.lo, atom.hi), "r2") in delivers


class TestIncrementalRefresh:
    def test_refresh_after_link_flap(self):
        scenario = ring_ospf(5)
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
        model = DatalogReachability(analyzer.state.dataplane)
        for change in (
            Change.of(LinkDown("r0", "r1")),
            Change.of(LinkUp("r0", "r1")),
        ):
            analyzer.analyze(change)
            dirty = list(analyzer.state.dataplane.atom_table.atoms())
            model.refresh_atoms(dirty)
            assert model.validate_against_dataplane()

    def test_refresh_delta_is_scoped(self):
        scenario = line_static(4)
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
        model = DatalogReachability(analyzer.state.dataplane)
        report = analyzer.analyze(Change.of(LinkDown("r2", "r3")))
        # Refresh only atoms the analyzer touched.
        touched = [
            analyzer.state.dataplane.atom_table.atom_containing(s.lo)
            for s in report.reach_segments
        ]
        delta = model.refresh_atoms(touched)
        assert not delta.is_empty()
        # The datalog view of the touched atoms matches the dataplane.
        assert model.validate_against_dataplane(touched)
