"""The `repro.api` session facade and the fluent ChangeSet builder.

The load-bearing guarantee: the facade is a pure veneer — `preview`,
`apply`, and `campaign` produce reports identical to the legacy
`what_if` / `analyze` / `CampaignRunner` call paths.
"""

import pytest

from repro.api import ChangeSet, Network
from repro.campaign import CampaignRunner, all_single_link_failures
from repro.config.acl import AclAction, AclRule
from repro.config.routing import StaticRouteConfig
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import (
    AddAclRule,
    AddStaticRoute,
    BindAcl,
    Change,
    LinkDown,
    LinkUp,
    SetLocalPref,
    SetOspfCost,
)
from repro.core.invariants import LoopFreedom, ReachabilityInvariant
from repro.net.addr import IPv4Address, Prefix
from repro.query.paths import ForwardingPaths
from repro.workloads.scenarios import ring_ospf


@pytest.fixture()
def ring6():
    return ring_ospf(6)


class TestConstructors:
    def test_from_snapshot_lazy_convergence(self, ring6):
        net = Network.from_snapshot(ring6.snapshot)
        assert not net.converged()
        assert net.state.fibs  # forces the one-time simulation
        assert net.converged()

    def test_from_topology(self, ring6):
        net = Network.from_topology(ring6.snapshot.topology)
        assert net.snapshot.topology.num_routers() == 6

    def test_from_analyzer_adopts_warm_state(self, ring6):
        analyzer = DifferentialNetworkAnalyzer(ring6.snapshot)
        net = Network.from_analyzer(analyzer)
        assert net.converged()
        assert net.analyzer is analyzer

    def test_load_save_round_trip(self, ring6, tmp_path):
        directory = str(tmp_path / "snap")
        Network.from_snapshot(ring6.snapshot).save(directory)
        net = Network.load(directory)
        assert net.snapshot.topology.num_routers() == 6

    def test_generate_keeps_scenario_metadata(self):
        net = Network.generate("ring", size=6)
        assert net.scenario is not None
        assert net.scenario.fabric.all_host_subnets()

    def test_generate_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            Network.generate("moebius", size=3)

    def test_scenario_network_helper(self, ring6):
        net = ring6.network()
        assert net.scenario is ring6
        assert net.snapshot is ring6.snapshot


class TestEquivalenceWithLegacyPaths:
    """Acceptance: facade reports == legacy engine reports."""

    def test_preview_matches_what_if(self, ring6):
        net = ring_ospf(6).network()
        legacy = DifferentialNetworkAnalyzer(ring6.snapshot)
        change = Change.of(LinkDown("r0", "r1"), label="fail")
        facade = net.preview(ChangeSet("fail").link_down("r0", "r1"))
        reference = legacy.what_if(change)
        assert facade.behavior_signature() == reference.behavior_signature()
        assert facade.num_rib_changes() == reference.num_rib_changes()
        assert facade.num_fib_changes() == reference.num_fib_changes()
        assert facade.num_pair_changes() == reference.num_pair_changes()

    def test_apply_matches_analyze(self, ring6):
        net = ring_ospf(6).network()
        legacy = DifferentialNetworkAnalyzer(ring6.snapshot)
        facade = net.apply(ChangeSet("fail").link_down("r0", "r1"))
        reference = legacy.analyze(Change.of(LinkDown("r0", "r1"), label="fail"))
        assert facade.behavior_signature() == reference.behavior_signature()
        # Both sessions advanced identically: recovering the link
        # yields mirrored reports too.
        facade_up = net.apply(ChangeSet("recover").link_up("r0", "r1"))
        reference_up = legacy.analyze(
            Change.of(LinkUp("r0", "r1"), label="recover")
        )
        assert (
            facade_up.behavior_signature() == reference_up.behavior_signature()
        )

    def test_campaign_matches_campaign_runner(self):
        scenario = ring_ospf(6)
        batch = all_single_link_failures(scenario)
        monitored = scenario.fabric.all_host_subnets()

        legacy_runner = CampaignRunner(
            scenario.snapshot.clone(),
            invariants=[LoopFreedom()],
            label="ring6",
            monitored=monitored,
        )
        reference = legacy_runner.run(batch)

        net = scenario.network()
        facade = net.campaign(
            batch,
            invariants=["loop-freedom"],
            label="ring6",
            monitored=monitored,
        )
        assert facade.signatures() == reference.signatures()
        assert [o.name for o in facade.ranked()] == [
            o.name for o in reference.ranked()
        ]
        assert [o.blast_radius() for o in facade.outcomes] == [
            o.blast_radius() for o in reference.outcomes
        ]

    def test_preview_does_not_commit_apply_does(self, ring6):
        net = ring6.network()
        change = ChangeSet().link_down("r0", "r1")
        preview = net.preview(change)
        assert not preview.is_empty()
        # The link is still up: previewing again finds the same delta.
        second = net.preview(change)
        assert second.behavior_signature() == preview.behavior_signature()
        applied = net.apply(change)
        assert applied.behavior_signature() == preview.behavior_signature()
        # Now it is committed: re-disabling the same link is a no-op,
        # proving the session state really advanced.
        assert net.preview(change).is_empty()


class TestQueries:
    def test_trace_accepts_string_and_int_destinations(self, ring6):
        net = ring6.network()
        target = ring6.fabric.host_subnets["r3"][0]
        by_int = net.trace("r0", target.first + 1)
        by_str = net.trace("r0", str(IPv4Address(target.first + 1)))
        by_addr = net.trace("r0", IPv4Address(target.first + 1))
        assert by_int.is_delivered()
        assert by_str.render() == by_int.render()
        assert by_addr.render() == by_int.render()

    def test_paths_returns_typed_dag(self, ring6):
        net = ring6.network()
        target = ring6.fabric.host_subnets["r3"][0]
        paths = net.paths("r0", target.first + 1)
        assert isinstance(paths, ForwardingPaths)
        assert paths.delivered
        assert paths.routers() >= {"r0", "r3"}

    def test_path_diff_is_fork_backed(self, ring6):
        net = ring6.network()
        target = ring6.fabric.host_subnets["r1"][0]
        diff = net.path_diff(
            ChangeSet().link_down("r0", "r1"), "r0", target.first + 1
        )
        assert ("r0", "r1") in diff.removed_edges
        # The speculative change rolled back: direct path still live.
        assert ("r0", "r1") in net.paths("r0", target.first + 1).edges

    def test_check_resolves_registry_names(self, ring6):
        net = ring6.network()
        report = net.preview(ChangeSet().link_down("r0", "r1"))
        # A ring link failure blackholes the link's own /31.
        named = net.check(report, ["blackhole-freedom"])
        assert named and all(
            v.invariant == "blackhole-freedom" for v in named
        )
        instanced = net.check(report, [LoopFreedom()])
        assert instanced == []  # rings reroute without looping

    def test_check_by_invariant_groups(self, ring6):
        net = ring6.network()
        report = net.preview(ChangeSet().link_down("r0", "r1"))
        grouped = net.check_by_invariant(report, ["blackhole-freedom"])
        flat = net.check(report, ["blackhole-freedom"])
        regrouped = [
            violation
            for violations in grouped.values()
            for violation in violations
        ]
        assert sorted(regrouped, key=str) == sorted(flat, key=str)

    def test_campaign_backend_validation(self, ring6):
        net = ring6.network()
        with pytest.raises(ValueError, match="unknown backend"):
            net.campaign([], backend="quantum")


class TestCampaignRunnerReuse:
    def test_distinct_invariant_instances_rebuild_the_runner(self, ring6):
        # Regression: the runner-reuse key used to hash invariant
        # instances with id(). A temporary invariant dies after the
        # call, CPython recycles its address for the next allocation,
        # and the recycled id aliased the stale runner — the second
        # campaign was silently checked against the FIRST invariant.
        # The key now holds the instances themselves: held references
        # cannot be recycled, and distinct instances rebuild.
        net = ring6.network()
        batch = all_single_link_failures(ring6)[:2]
        target = ring6.fabric.host_subnets["r3"][0]
        net.campaign(
            batch, invariants=[ReachabilityInvariant("r0", "r3", target)]
        )
        first_runner = net._runner
        report = net.campaign(
            batch, invariants=[ReachabilityInvariant("r5", "r3", target)]
        )
        assert net._runner is not first_runner
        # The answers really come from the second invariant.
        names = {
            v.invariant for o in report.outcomes for v in o.violations
        }
        assert all(name.startswith("reach(r5 ->") for name in names)

    def test_value_equal_invariants_share_the_runner(self, ring6):
        # ReachabilityInvariant is a dataclass: two equal-valued
        # instances describe the same check, so the runner (and its
        # cached encoded-base payload) is safely reused.
        net = ring6.network()
        batch = all_single_link_failures(ring6)[:2]
        target = ring6.fabric.host_subnets["r3"][0]
        net.campaign(
            batch, invariants=[ReachabilityInvariant("r0", "r3", target)]
        )
        runner = net._runner
        net.campaign(
            batch, invariants=[ReachabilityInvariant("r0", "r3", target)]
        )
        assert net._runner is runner


class TestChangeSet:
    def test_builds_equivalent_change(self):
        built = (
            ChangeSet("combo")
            .link_down("r0", "r1")
            .set_ospf_cost("r2", "eth0", 50)
            .set_local_pref("r3", "RM", 10, 200)
            .build()
        )
        reference = Change.of(
            LinkDown("r0", "r1"),
            SetOspfCost("r2", "eth0", 50),
            SetLocalPref("r3", "RM", 10, 200),
            label="combo",
        )
        assert built.label == reference.label
        assert built.edits == reference.edits

    def test_acl_sugar(self):
        built = (
            ChangeSet()
            .permit("r2", "F", "0.0.0.0/0")
            .deny("r2", "F", "172.16.4.0/24", position=0)
            .bind_acl("r2", "eth1", "F", "out")
            .build()
        )
        reference = Change.of(
            AddAclRule(
                "r2", "F", AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0"))
            ),
            AddAclRule(
                "r2",
                "F",
                AclRule(AclAction.DENY, dst=Prefix("172.16.4.0/24")),
                position=0,
            ),
            BindAcl("r2", "eth1", "F", "out"),
        )
        assert built.edits == reference.edits

    def test_static_route_coercions(self):
        built = (
            ChangeSet()
            .add_static_route("r0", "198.51.100.0/24", next_hop="10.0.0.1")
            .build()
        )
        reference = Change.of(
            AddStaticRoute(
                "r0",
                StaticRouteConfig(
                    Prefix("198.51.100.0/24"),
                    next_hop=IPv4Address("10.0.0.1"),
                ),
            )
        )
        assert built.edits == reference.edits

    def test_script_round_trip(self):
        changeset = ChangeSet("demo").link_down("r0", "r1")
        script = changeset.to_script()
        rebuilt = ChangeSet.from_script(script, label="demo")
        assert rebuilt.build().edits == changeset.build().edits

    def test_facade_accepts_changeset_and_change(self, ring6):
        net = ring6.network()
        via_changeset = net.preview(ChangeSet().link_down("r0", "r1"))
        via_change = net.preview(Change.of(LinkDown("r0", "r1")))
        assert (
            via_changeset.behavior_signature()
            == via_change.behavior_signature()
        )

    def test_repr_and_len(self):
        changeset = ChangeSet("x").link_down("r0", "r1")
        assert len(changeset) == 1
        assert "1 edits" in repr(changeset)
        assert list(changeset) == changeset.build().edits


class TestReprs:
    """Satellite: campaign debugging needs non-opaque objects."""

    def test_delta_report_repr(self, ring6):
        report = ring6.network().preview(ChangeSet("fail").link_down("r0", "r1"))
        text = repr(report)
        assert "DeltaReport" in text and "RIB" in text and "pairs" in text

    def test_whatif_scenario_repr(self, ring6):
        scenario = all_single_link_failures(ring6)[0]
        text = repr(scenario)
        assert "WhatIfScenario" in text and "link-failure" in text

    def test_violation_repr(self, ring6):
        net = ring6.network()
        report = net.preview(ChangeSet().link_down("r0", "r1"))
        violations = net.check(report, ["blackhole-freedom"])
        assert violations, "ring blackholes its /31 on failure"
        assert "Violation(" in repr(violations[0])
