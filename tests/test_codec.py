"""The chunked binary snapshot codec: round trips, digests, tampering.

Acceptance: ``loads(dumps(snapshot))`` reproduces the snapshot's
canonical text forms byte-for-byte; the codec payload is smaller than
a raw pickle of the same base; corruption raises :class:`CodecError`
instead of producing a half-built snapshot.
"""

import pickle
import struct

import pytest

from repro.config.text import serialize_configs
from repro.core import codec
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, LinkDown
from repro.core.errors import ReproError
from repro.core.snapshot import serialize_topology
from repro.workloads.scenarios import ring_ospf


@pytest.fixture(scope="module")
def ring6():
    return ring_ospf(6)


class TestChunkContainer:
    def test_round_trip(self):
        chunks = [("aaaa", b"x" * 1000), ("bbbb", b"tiny"), ("cccc", b"")]
        data = codec.encode_chunks(chunks)
        assert codec.decode_chunks(data) == chunks

    def test_compression_is_transparent(self):
        # Highly repetitive payload compresses; decode restores it.
        chunks = [("blob", b"abc" * 10_000)]
        data = codec.encode_chunks(chunks)
        assert len(data) < 30_000
        assert codec.decode_chunks(data) == chunks

    def test_digest_is_compression_invariant(self):
        big = [("blob", b"abc" * 10_000)]
        small = [("blob", b"x")]  # below the compression threshold
        assert codec.container_digest(
            codec.encode_chunks(big)
        ) != codec.container_digest(codec.encode_chunks(small))
        # Same content -> same digest, every time.
        assert codec.container_digest(
            codec.encode_chunks(big)
        ) == codec.container_digest(codec.encode_chunks(big))

    def test_bad_magic_rejected(self):
        with pytest.raises(codec.CodecError, match="bad magic"):
            codec.decode_chunks(b"NOPE" + b"\x00" * 40)

    def test_truncation_rejected(self):
        data = codec.encode_chunks([("aaaa", b"y" * 500)])
        with pytest.raises(codec.CodecError, match="truncated"):
            codec.decode_chunks(data[:-10])

    def test_corruption_rejected(self):
        data = bytearray(codec.encode_chunks([("aaaa", b"z" * 10)]))
        data[-1] ^= 0xFF  # flip a payload byte (uncompressed chunk)
        with pytest.raises(codec.CodecError, match="digest mismatch"):
            codec.decode_chunks(bytes(data))

    def test_trailing_bytes_rejected(self):
        data = codec.encode_chunks([("aaaa", b"q")])
        with pytest.raises(codec.CodecError, match="trailing bytes"):
            codec.decode_chunks(data + b"junk")

    def test_version_skew_rejected(self):
        data = bytearray(codec.encode_chunks([("aaaa", b"q")]))
        struct.pack_into(">H", data, 4, codec.CODEC_VERSION + 1)
        with pytest.raises(codec.CodecError, match="codec version"):
            codec.decode_chunks(bytes(data))

    def test_codec_error_is_a_repro_error(self):
        assert issubclass(codec.CodecError, ReproError)
        assert issubclass(codec.CodecError, ValueError)

    def test_short_container_rejected(self):
        # Shorter than the fixed header: both entry points refuse.
        for short in (b"", b"RNS1", b"RNS1" + b"\x00" * 20):
            with pytest.raises(codec.CodecError, match="shorter than"):
                codec.decode_chunks(short)
            with pytest.raises(codec.CodecError, match="shorter than"):
                codec.container_digest(short)

    def test_container_digest_checks_magic(self):
        with pytest.raises(codec.CodecError, match="bad magic"):
            codec.container_digest(b"NOPE" + b"\x00" * 40)

    def test_chunk_count_overstatement_rejected(self):
        # Header promises one more chunk than the body carries.
        data = bytearray(codec.encode_chunks([("aaaa", b"q")]))
        struct.pack_into(">H", data, 6, 2)
        with pytest.raises(codec.CodecError, match="truncated chunk header"):
            codec.decode_chunks(bytes(data))

    def test_chunk_count_understatement_rejected(self):
        # Header promises one fewer: the orphaned chunk is trailing junk.
        data = bytearray(
            codec.encode_chunks([("aaaa", b"q"), ("bbbb", b"r")])
        )
        struct.pack_into(">H", data, 6, 1)
        with pytest.raises(codec.CodecError, match="trailing bytes"):
            codec.decode_chunks(bytes(data))

    def test_flags_mismatch_rejected(self):
        # The zlib flag set on a chunk stored raw: inflate fails, and
        # the reader reports the corrupt chunk instead of guessing.
        data = bytearray(codec.encode_chunks([("aaaa", b"q")]))
        flags_offset = codec._HEADER.size + 4  # after the 4-byte tag
        assert data[flags_offset] == 0
        data[flags_offset] |= codec._FLAG_ZLIB
        with pytest.raises(codec.CodecError, match="corrupt 'aaaa' chunk"):
            codec.decode_chunks(bytes(data))

    def test_compressed_chunk_corruption_rejected(self):
        # Flip a byte inside a zlib-compressed payload body.
        data = bytearray(codec.encode_chunks([("blob", b"abc" * 10_000)]))
        data[-2] ^= 0xFF
        with pytest.raises(codec.CodecError, match="corrupt|digest"):
            codec.decode_chunks(bytes(data))

    def test_bad_tag_rejected_at_encode(self):
        with pytest.raises(codec.CodecError, match="4 ascii bytes"):
            codec.encode_chunks([("toolong", b"q")])


class TestSnapshotCodec:
    def test_round_trip_is_text_identical(self, ring6):
        data = codec.dumps(ring6.snapshot)
        rebuilt = codec.loads(data)
        assert serialize_topology(rebuilt.topology) == serialize_topology(
            ring6.snapshot.topology
        )
        assert serialize_configs(rebuilt.configs) == serialize_configs(
            ring6.snapshot.configs
        )

    def test_describe_names_the_standard_chunks(self, ring6):
        sizes = codec.describe(codec.dumps(ring6.snapshot))
        assert set(sizes) == {codec.CHUNK_TOPOLOGY, codec.CHUNK_CONFIGS}
        assert all(size > 0 for size in sizes.values())

    def test_snapshot_digest_matches_container_header(self, ring6):
        assert codec.snapshot_digest(ring6.snapshot) == (
            codec.container_digest(codec.dumps(ring6.snapshot))
        )

    def test_snapshot_digest_tracks_content(self, ring6):
        other = ring_ospf(8)
        assert codec.snapshot_digest(ring6.snapshot) != (
            codec.snapshot_digest(other.snapshot)
        )

    def test_unknown_chunk_is_skippable(self, ring6):
        # Self-describing container: readers ignore tags they don't
        # know, so a future writer can add chunks without breaking us.
        chunks = codec.decode_chunks(codec.dumps(ring6.snapshot))
        chunks.append(("futr", b"from a newer writer"))
        rebuilt = codec.loads(codec.encode_chunks(chunks))
        assert serialize_topology(rebuilt.topology) == serialize_topology(
            ring6.snapshot.topology
        )

    def test_missing_standard_chunk_rejected(self, ring6):
        chunks = codec.decode_chunks(codec.dumps(ring6.snapshot))
        only_topo = [c for c in chunks if c[0] == codec.CHUNK_TOPOLOGY]
        with pytest.raises(codec.CodecError, match="missing 'cfgs' chunk"):
            codec.loads(codec.encode_chunks(only_topo))


class TestBaseCodec:
    def test_warm_base_round_trip_preserves_what_if(self, ring6):
        analyzer = DifferentialNetworkAnalyzer(ring6.snapshot.clone())
        data = codec.dumps_base(analyzer)
        rebuilt = codec.loads_base(data)
        assert rebuilt.generation == analyzer.generation
        change = Change(edits=[LinkDown("r0", "r1")], label="probe")
        expected = analyzer.what_if(change)
        actual = rebuilt.what_if(change)
        assert actual.behavior_signature() == expected.behavior_signature()

    def test_codec_payload_beats_raw_pickle(self, ring6):
        analyzer = DifferentialNetworkAnalyzer(ring6.snapshot.clone())
        data = codec.dumps_base(analyzer)
        raw = pickle.dumps(analyzer, protocol=pickle.HIGHEST_PROTOCOL)
        assert len(data) < len(raw)

    def test_snapshot_only_container_reconverges(self, ring6):
        data = codec.dumps(ring6.snapshot)
        rebuilt = codec.loads_base(data)
        assert isinstance(rebuilt, DifferentialNetworkAnalyzer)
        # A snapshot-only container converges fresh at construction.
        assert rebuilt.state.ribs

    def test_base_chunk_type_is_checked(self, ring6):
        chunks = codec.decode_chunks(codec.dumps(ring6.snapshot))
        chunks.append((codec.CHUNK_BASE, pickle.dumps({"not": "analyzer"})))
        data = codec.encode_chunks(chunks)
        with pytest.raises(codec.CodecError, match="not a converged"):
            codec.loads_base(data)
