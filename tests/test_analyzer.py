"""The differential analyzer: unit behaviours and the equivalence oracle.

The oracle tests are the heart of the suite: for every change kind on
every scenario family, the incremental analyzer must produce exactly
the delta the full snapshot-diff baseline produces.
"""

import pytest

from repro.config.routing import StaticRouteConfig
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import (
    AddStaticRoute,
    AnnouncePrefix,
    Change,
    ChangeError,
    LinkDown,
    LinkUp,
    RemoveStaticRoute,
    SetOspfCost,
    WithdrawPrefix,
)
from repro.core.oracle import EquivalenceOracle
from repro.net.addr import Prefix
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import (
    fat_tree_ospf,
    internet2_bgp,
    line_static,
    random_ospf,
    ring_ospf,
)


class TestAnalyzerUnits:
    def test_noop_change_produces_empty_report(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        report = analyzer.analyze(Change.of(label="noop"))
        assert report.is_empty()

    def test_static_add_scopes_to_one_prefix(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        peer = analyzer.snapshot.topology.interface_peer("r0", "eth1")
        prefix = Prefix("10.250.0.0/24")
        report = analyzer.analyze(
            Change.of(
                AddStaticRoute(
                    "r0", StaticRouteConfig(prefix, next_hop=peer.address)
                )
            )
        )
        assert report.num_fib_changes() == 1
        assert list(report.fib_changes["r0"]) == [prefix]
        # Only the atoms carved out of the scratch space were touched.
        assert report.counters["atoms_analyzed"] <= 3

    def test_add_then_remove_round_trips_state(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        atoms_before = analyzer.state.dataplane.atom_table.num_atoms()
        peer = analyzer.snapshot.topology.interface_peer("r0", "eth1")
        static = StaticRouteConfig(Prefix("10.250.0.0/24"), next_hop=peer.address)
        analyzer.analyze(Change.of(AddStaticRoute("r0", static)))
        report = analyzer.analyze(Change.of(RemoveStaticRoute("r0", static)))
        assert analyzer.state.dataplane.atom_table.num_atoms() == atoms_before
        assert report.num_fib_changes() == 1

    def test_link_down_skips_unaffected_spf_sources(self):
        scenario = ring_ospf(8)
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
        # Make the r0--r1 link so expensive no shortest path uses it,
        # then fail it: no source's SPF tree is affected (only the /31
        # advertisement changes), so no SPF recomputation happens.
        analyzer.analyze(
            Change.of(
                SetOspfCost("r0", "eth1", 500), SetOspfCost("r1", "eth0", 500)
            )
        )
        report = analyzer.analyze(
            Change.of(LinkDown("r0", "r1"), label="unused link down")
        )
        assert report.counters["spf_sources_recomputed"] == 0
        # The /31 still disappears from the network, so the report is
        # not empty.
        assert not report.is_empty()

    def test_failed_edit_raises(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        with pytest.raises(ChangeError):
            analyzer.analyze(Change.of(LinkDown("r0", "r5")))  # not adjacent

    def test_counters_present(self, ring8_scenario):
        analyzer = DifferentialNetworkAnalyzer(ring8_scenario.snapshot.clone())
        report = analyzer.analyze(Change.of(SetOspfCost("r0", "eth1", 33)))
        for key in (
            "spf_sources_recomputed",
            "bgp_prefixes_resolved",
            "atoms_analyzed",
            "atoms_total",
        ):
            assert key in report.counters
        assert report.timings["total"] > 0

    def test_bgp_announce_withdraw(self, internet2_scenario):
        analyzer = DifferentialNetworkAnalyzer(internet2_scenario.snapshot.clone())
        prefix = Prefix("10.254.77.0/24")
        report = analyzer.analyze(Change.of(AnnouncePrefix("cust_seat0", prefix)))
        # Routers across the WAN pick up a BGP route; since no subnet
        # backs the announcement, the impact is forwarding + blackhole
        # churn, not new delivery pairs.
        assert report.num_fib_changes() > 0
        assert any(s.blackholes_removed for s in report.reach_segments)
        report = analyzer.analyze(Change.of(WithdrawPrefix("cust_seat0", prefix)))
        assert any(s.blackholes_added for s in report.reach_segments)
        assert prefix not in analyzer.state.bgp_solutions


def _drive(oracle: EquivalenceOracle, generator: ChangeGenerator, kinds, steps):
    for _ in range(steps):
        kind = generator.rng.choice(kinds)
        if kind == "link":
            down, up = generator.random_link_failure()
            oracle.step(down)
            oracle.step(up)
        elif kind == "iface":
            shutdown, enable = generator.random_interface_flap()
            oracle.step(shutdown)
            oracle.step(enable)
        elif kind == "session":
            teardown, restore = generator.random_session_flap()
            oracle.step(teardown)
            oracle.step(restore)
        elif kind == "static":
            add, remove = generator.random_static_route()
            oracle.step(add)
            oracle.step(remove)
        elif kind == "cost":
            oracle.step(generator.random_ospf_cost())
        elif kind == "acl":
            block, unblock = generator.random_acl_block()
            oracle.step(block)
            oracle.step(unblock)
        elif kind == "prefix":
            announce, withdraw = generator.random_prefix_flap()
            oracle.step(announce)
            oracle.step(withdraw)
        elif kind == "pref":
            oracle.step(generator.dual_homed_pref_flip(100, 200))
            oracle.step(generator.dual_homed_pref_flip(200, 100))
    assert oracle.stats.pass_rate == 1.0


class TestEquivalenceOracle:
    """Incremental == snapshot-diff, per scenario family."""

    def test_static_chain(self):
        scenario = line_static(5)
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        _drive(oracle, ChangeGenerator(scenario, seed=21), ["link", "static"], 5)

    def test_ospf_ring(self):
        scenario = ring_ospf(8)
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        _drive(
            oracle,
            ChangeGenerator(scenario, seed=22),
            ["link", "static", "cost"],
            6,
        )

    def test_random_ospf_with_acls(self):
        scenario = random_ospf(12, 10, seed=23)
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        _drive(
            oracle,
            ChangeGenerator(scenario, seed=23),
            ["link", "static", "cost", "acl"],
            6,
        )

    def test_fat_tree(self):
        scenario = fat_tree_ospf(4)
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        _drive(
            oracle,
            ChangeGenerator(scenario, seed=24),
            ["link", "static", "cost", "acl"],
            5,
        )

    def test_internet2_bgp_full_mix(self):
        scenario = internet2_bgp()
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        _drive(
            oracle,
            ChangeGenerator(scenario, seed=25),
            ["link", "static", "cost", "acl", "prefix", "pref"],
            6,
        )

    def test_interface_shutdown_mix(self):
        scenario = ring_ospf(6)
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        _drive(
            oracle,
            ChangeGenerator(scenario, seed=28),
            ["iface", "static"],
            5,
        )

    def test_redistribute_connected_tracks_interface_state(self):
        # Customers originate via redistribute-connected: shutting a
        # host interface must withdraw the prefix network-wide, and
        # both analysis paths must agree on the fallout.
        scenario = internet2_bgp(redistribute_connected=True)
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        from repro.core.change import (
            Change,
            EnableInterface,
            ShutdownInterface,
        )

        oracle.step(Change.of(ShutdownInterface("cust_chic0", "host0")))
        oracle.step(Change.of(EnableInterface("cust_chic0", "host0")))
        assert oracle.stats.pass_rate == 1.0
        # And the withdrawn prefix really left the BGP state meanwhile.
        prefix = scenario.fabric.host_subnets["cust_chic0"][0]
        assert prefix in oracle.analyzer.state.bgp_solutions

    def test_bgp_session_churn(self):
        scenario = internet2_bgp()
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        _drive(
            oracle,
            ChangeGenerator(scenario, seed=29),
            ["session", "iface", "prefix"],
            4,
        )

    def test_multi_edit_batches(self):
        scenario = ring_ospf(6)
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        generator = ChangeGenerator(scenario, seed=26)
        for size in (2, 4, 8):
            add, remove = generator.static_batch(size)
            oracle.step(add)
            oracle.step(remove)
        assert oracle.stats.pass_rate == 1.0

    def test_oracle_reports_speedup(self):
        scenario = ring_ospf(8)
        oracle = EquivalenceOracle(DifferentialNetworkAnalyzer(scenario.snapshot))
        generator = ChangeGenerator(scenario, seed=27)
        add, remove = generator.random_static_route()
        oracle.step(add)
        oracle.step(remove)
        assert oracle.stats.checked == 2
        assert oracle.stats.incremental_time > 0
        assert oracle.stats.baseline_time > 0
