"""Prefix lists, route maps, attribute bundles."""

import pytest

from repro.config.routemap import (
    AttributeBundle,
    ClauseAction,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapClause,
)
from repro.net.addr import Prefix


def bundle(prefix: str = "10.0.0.0/24", **overrides) -> AttributeBundle:
    return AttributeBundle(prefix=Prefix(prefix), **overrides)


class TestAttributeBundle:
    def test_prepend(self):
        b = bundle(as_path=(65001,)).prepend(65002, 2)
        assert b.as_path == (65002, 65002, 65001)

    def test_communities(self):
        b = bundle().add_communities([(65000, 1), (65000, 2)])
        b = b.remove_communities([(65000, 1)])
        assert b.communities == {(65000, 2)}

    def test_loop_check(self):
        assert bundle(as_path=(1, 2, 3)).path_contains(2)
        assert not bundle(as_path=(1, 3)).path_contains(2)

    def test_immutability(self):
        b = bundle()
        b2 = b.with_local_pref(300)
        assert b.local_pref == 100 and b2.local_pref == 300


class TestPrefixList:
    def test_exact_match_default(self):
        plist = PrefixList("p", [PrefixListEntry(prefix=Prefix("10.0.0.0/16"))])
        assert plist.permits(Prefix("10.0.0.0/16"))
        assert not plist.permits(Prefix("10.0.0.0/24"))

    def test_ge_le_window(self):
        entry = PrefixListEntry(prefix=Prefix("10.0.0.0/8"), ge=16, le=24)
        assert entry.matches(Prefix("10.1.0.0/16"))
        assert entry.matches(Prefix("10.1.2.0/24"))
        assert not entry.matches(Prefix("10.0.0.0/8"))
        assert not entry.matches(Prefix("10.1.2.128/25"))

    def test_ge_without_le_allows_up_to_32(self):
        entry = PrefixListEntry(prefix=Prefix("10.0.0.0/8"), ge=24)
        assert entry.matches(Prefix("10.1.2.3/32"))

    def test_first_match_and_implicit_deny(self):
        plist = PrefixList(
            "p",
            [
                PrefixListEntry(prefix=Prefix("10.9.0.0/16"), permit=False),
                PrefixListEntry(prefix=Prefix("10.0.0.0/8"), ge=16, le=16),
            ],
        )
        assert not plist.permits(Prefix("10.9.0.0/16"))
        assert plist.permits(Prefix("10.8.0.0/16"))
        assert not plist.permits(Prefix("11.0.0.0/16"))


class TestRouteMap:
    def prefix_lists(self):
        return {
            "CUST": PrefixList(
                "CUST", [PrefixListEntry(prefix=Prefix("10.0.0.0/8"), ge=24, le=24)]
            )
        }

    def test_permit_with_sets(self):
        route_map = RouteMap(
            "m",
            [
                RouteMapClause(
                    seq=10,
                    match_prefix_list="CUST",
                    set_local_pref=250,
                    prepend_count=2,
                )
            ],
        )
        out = route_map.apply(bundle("10.1.2.0/24"), self.prefix_lists(), 65000)
        assert out is not None
        assert out.local_pref == 250
        assert out.as_path == (65000, 65000)

    def test_implicit_deny(self):
        route_map = RouteMap(
            "m", [RouteMapClause(seq=10, match_prefix_list="CUST")]
        )
        assert route_map.apply(bundle("11.0.0.0/24"), self.prefix_lists(), 1) is None

    def test_explicit_deny_clause(self):
        route_map = RouteMap(
            "m",
            [
                RouteMapClause(
                    seq=5, action=ClauseAction.DENY, match_prefix_list="CUST"
                ),
                RouteMapClause(seq=10),
            ],
        )
        assert route_map.apply(bundle("10.1.2.0/24"), self.prefix_lists(), 1) is None
        assert route_map.apply(bundle("11.0.0.0/24"), self.prefix_lists(), 1) is not None

    def test_community_match(self):
        route_map = RouteMap(
            "m",
            [RouteMapClause(seq=10, match_community=(65000, 666), set_med=50)],
        )
        tagged = bundle().add_communities([(65000, 666)])
        assert route_map.apply(tagged, {}, 1).med == 50
        assert route_map.apply(bundle(), {}, 1) is None

    def test_clause_sequencing(self):
        route_map = RouteMap("m")
        route_map.add_clause(RouteMapClause(seq=20, set_local_pref=1))
        route_map.add_clause(RouteMapClause(seq=10, set_local_pref=2))
        assert route_map.apply(bundle(), {}, 1).local_pref == 2

    def test_duplicate_seq_rejected(self):
        route_map = RouteMap("m", [RouteMapClause(seq=10)])
        with pytest.raises(ValueError):
            route_map.add_clause(RouteMapClause(seq=10))

    def test_remove_clause(self):
        route_map = RouteMap("m", [RouteMapClause(seq=10)])
        route_map.remove_clause(10)
        assert route_map.apply(bundle(), {}, 1) is None
        with pytest.raises(ValueError):
            route_map.remove_clause(10)

    def test_missing_prefix_list_never_matches(self):
        route_map = RouteMap(
            "m", [RouteMapClause(seq=10, match_prefix_list="NOPE")]
        )
        assert route_map.apply(bundle(), {}, 1) is None

    def test_community_add_remove_sets(self):
        route_map = RouteMap(
            "m",
            [
                RouteMapClause(
                    seq=10,
                    set_communities_add=frozenset({(1, 2)}),
                    set_communities_remove=frozenset({(3, 4)}),
                )
            ],
        )
        tagged = bundle().add_communities([(3, 4)])
        out = route_map.apply(tagged, {}, 1)
        assert out.communities == {(1, 2)}
