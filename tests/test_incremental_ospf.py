"""OspfIncremental: surgical graph/advertisement maintenance."""

from repro.controlplane.incremental import OspfDirty, OspfIncremental
from repro.controlplane.simulation import simulate
from repro.core.change import DisableOspfInterface, LinkDown, SetOspfCost
from repro.workloads.scenarios import ring_ospf


def fresh_state():
    scenario = ring_ospf(5)
    state = simulate(scenario.snapshot)
    return scenario, state, OspfIncremental(state)


class TestOspfDirty:
    def test_merge(self):
        a = OspfDirty(sources={("r0", 0)}, prefixes={0: {None}})
        b = OspfDirty(sources={("r1", 0)}, prefixes={1: {None}})
        a.merge(b)
        assert a.sources == {("r0", 0), ("r1", 0)}
        assert set(a.prefixes) == {0, 1}

    def test_is_empty(self):
        assert OspfDirty().is_empty()
        assert not OspfDirty(sources={("r0", 0)}).is_empty()


class TestRefreshPair:
    def test_link_down_removes_edges(self):
        scenario, state, incremental = fresh_state()
        LinkDown("r0", "r1").apply(state.snapshot)
        dirty = incremental.refresh_pair("r0", "r1")
        graph = state.ospf_state.graphs[0]
        assert graph.cost("r0", "r1") == float("inf")
        assert graph.cost("r1", "r0") == float("inf")
        affected = {router for router, _ in dirty.sources}
        assert affected  # every ring source used that edge somewhere

    def test_noop_refresh_reports_nothing(self):
        _scenario, _state, incremental = fresh_state()
        dirty = incremental.refresh_pair("r0", "r1")
        assert dirty.is_empty()

    def test_cost_change_updates_edge(self):
        scenario, state, incremental = fresh_state()
        link = state.snapshot.topology.find_link("r0", "r1")
        local_if = link.endpoint_on("r0")[1]
        SetOspfCost("r0", local_if, 42).apply(state.snapshot)
        dirty = incremental.refresh_pair("r0", "r1")
        graph = state.ospf_state.graphs[0]
        assert graph.cost("r0", "r1") == 42
        assert graph.cost("r1", "r0") == 10  # asymmetric: peer unchanged
        assert not dirty.is_empty()

    def test_ospf_disable_removes_direction(self):
        scenario, state, incremental = fresh_state()
        link = state.snapshot.topology.find_link("r0", "r1")
        local_if = link.endpoint_on("r0")[1]
        DisableOspfInterface("r0", local_if).apply(state.snapshot)
        incremental.refresh_pair("r0", "r1")
        graph = state.ospf_state.graphs[0]
        # Adjacency needs both sides: both directions collapse.
        assert graph.cost("r0", "r1") == float("inf")
        assert graph.cost("r1", "r0") == float("inf")


class TestRefreshAdverts:
    def test_link_down_drops_p2p_subnet(self):
        scenario, state, incremental = fresh_state()
        link = state.snapshot.topology.find_link("r0", "r1")
        local_if = link.endpoint_on("r0")[1]
        subnet = state.snapshot.topology.router("r0").interface(local_if).subnet
        LinkDown("r0", "r1").apply(state.snapshot)
        dirty = incremental.refresh_router_adverts("r0")
        assert subnet in dirty.prefixes[0]
        assert subnet not in state.ospf_state.advertised[0]["r0"]

    def test_unchanged_router_reports_nothing(self):
        _scenario, _state, incremental = fresh_state()
        dirty = incremental.refresh_router_adverts("r2")
        assert dirty.is_empty()

    def test_cost_change_updates_advert_cost(self):
        scenario, state, incremental = fresh_state()
        SetOspfCost("r0", "host0", 9).apply(state.snapshot)
        dirty = incremental.refresh_router_adverts("r0")
        host = scenario.fabric.host_subnets["r0"][0]
        assert host in dirty.prefixes[0]
        assert state.ospf_state.advertised[0]["r0"][host] == 9

    def test_membership_dropped_when_ospf_gone(self):
        scenario, state, incremental = fresh_state()
        config = state.snapshot.configs["r0"]
        for settings in config.ospf.interfaces.values():
            settings.enabled = False
        incremental.refresh_router_adverts("r0")
        assert "r0" not in state.ospf_state.membership
