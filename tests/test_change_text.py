"""Change script parsing, serialization, and CLI plumbing."""

import pytest

from repro.config.acl import AclAction
from repro.core.change import (
    AddAclRule,
    AddStaticRoute,
    AnnouncePrefix,
    BindAcl,
    LinkDown,
    LinkUp,
    SetLocalPref,
    SetOspfCost,
    ShutdownInterface,
)
from repro.core.change_text import (
    ChangeParseError,
    parse_change,
    serialize_change,
)
from repro.net.addr import IPv4Address, Prefix

FULL_SCRIPT = """\
# maintenance window 42
link down SEAT LOSA
link up SEAT SALT
interface shutdown r1 eth0
interface enable r1 eth0
static add r0 10.99.0.0/24 next-hop 10.0.0.1
static add r0 10.98.0.0/24 interface eth1
static add r0 10.97.0.0/24 drop
static remove r0 10.99.0.0/24 next-hop 10.0.0.1
ospf cost SEAT eth0 50
ospf enable r1 eth2 area 1 cost 20
ospf disable r1 eth2
bgp announce cust0 10.254.9.0/24
bgp withdraw cust0 10.254.9.0/24
acl add r3 FILTER deny dst 172.16.5.0/24 src 192.168.0.0/16 proto 6 dport 80-443
acl add r3 FILTER permit dst 0.0.0.0/0
acl remove r3 FILTER permit dst 0.0.0.0/0
acl bind r3 eth1 out FILTER
acl unbind r3 eth1 out
route-map local-pref SEAT IMP_CUST 10 200
"""


class TestParsing:
    def test_full_script_parses(self):
        change = parse_change(FULL_SCRIPT, label="window 42")
        assert len(change) == 19
        assert isinstance(change.edits[0], LinkDown)
        assert isinstance(change.edits[1], LinkUp)
        assert isinstance(change.edits[2], ShutdownInterface)

    def test_static_variants(self):
        change = parse_change(
            "static add r0 10.99.0.0/24 next-hop 10.0.0.1\n"
            "static add r0 10.97.0.0/24 drop\n"
        )
        first, second = change.edits
        assert isinstance(first, AddStaticRoute)
        assert first.route.next_hop == IPv4Address("10.0.0.1")
        assert second.route.drop

    def test_acl_rule_fields(self):
        change = parse_change(
            "acl add r3 F deny dst 172.16.5.0/24 proto 6 dport 80-443\n"
        )
        (edit,) = change.edits
        assert isinstance(edit, AddAclRule)
        assert edit.rule.action is AclAction.DENY
        assert edit.rule.proto == 6
        assert edit.rule.dport_hi == 443

    def test_bind_and_unbind(self):
        change = parse_change("acl bind r3 eth1 out F\nacl unbind r3 eth1 out\n")
        bind, unbind = change.edits
        assert isinstance(bind, BindAcl) and bind.acl == "F"
        assert isinstance(unbind, BindAcl) and unbind.acl is None

    def test_local_pref(self):
        change = parse_change("route-map local-pref SEAT M 10 200\n")
        (edit,) = change.edits
        assert isinstance(edit, SetLocalPref)
        assert edit.local_pref == 200

    def test_ospf_defaults(self):
        change = parse_change("ospf enable r1 eth2\n")
        (edit,) = change.edits
        assert edit.area == 0 and edit.cost == 10

    def test_comments_and_blanks(self):
        change = parse_change("# nothing\n\n   # more nothing\n")
        assert len(change) == 0

    def test_error_carries_line(self):
        with pytest.raises(ChangeParseError) as excinfo:
            parse_change("link down a b\nnonsense here\n")
        assert excinfo.value.line_number == 2

    def test_bad_static_target(self):
        with pytest.raises(ChangeParseError, match="static target"):
            parse_change("static add r0 10.0.0.0/24 nowhere\n")


class TestRoundTrip:
    def test_serialize_parse_round_trip(self):
        change = parse_change(FULL_SCRIPT, label="window 42")
        text = serialize_change(change)
        reparsed = parse_change(text, label="window 42")
        assert serialize_change(reparsed) == text
        assert [type(e) for e in reparsed.edits] == [type(e) for e in change.edits]

    def test_announce_round_trip(self):
        change = parse_change("bgp announce c 10.254.9.0/24\n")
        assert "bgp announce c 10.254.9.0/24" in serialize_change(change)
        (edit,) = change.edits
        assert isinstance(edit, AnnouncePrefix)
        assert edit.prefix == Prefix("10.254.9.0/24")

    def test_ospf_cost_round_trip(self):
        change = parse_change("ospf cost r0 eth1 42\n")
        (edit,) = change.edits
        assert isinstance(edit, SetOspfCost)
        assert "ospf cost r0 eth1 42" in serialize_change(change)


class TestCli:
    def test_demo_show_analyze_trace(self, tmp_path):
        from repro.cli import main

        directory = str(tmp_path / "demo")
        assert main(["demo", directory]) == 0
        assert main(["show", directory, "--limit", "2"]) == 0
        script = str(tmp_path / "demo" / "change.dna")
        assert main(["analyze", directory, script, "--baseline"]) == 0
        assert main(["trace", directory, "r0", "172.16.3.1"]) == 0

    def test_analyze_commit_persists(self, tmp_path):
        from repro.cli import main
        from repro.core.snapshot import Snapshot

        directory = str(tmp_path / "demo")
        main(["demo", directory])
        script = str(tmp_path / "demo" / "change.dna")
        assert main(["analyze", directory, script, "--commit"]) == 0
        snapshot = Snapshot.load(directory)
        assert snapshot.topology.num_links() == 5  # one ring link down

    def test_trace_unreachable_exit_code(self, tmp_path):
        from repro.cli import main

        directory = str(tmp_path / "demo")
        main(["demo", directory])
        assert main(["trace", directory, "r0", "203.0.113.1"]) == 2
