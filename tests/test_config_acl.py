"""ACL semantics: first-match evaluation and destination projection."""

from hypothesis import given, strategies as st

import pytest

from repro.config.acl import Acl, AclAction, AclRule
from repro.net.addr import Prefix
from repro.net.interval import IntervalSet


def packet(dst: int, src: int = 0, proto: int = 6, dport: int = 80) -> dict:
    return {"dst": dst, "src": src, "proto": proto, "dport": dport}


class TestRuleMatching:
    def test_dst_only(self):
        rule = AclRule(AclAction.PERMIT, dst=Prefix("10.0.0.0/24"))
        assert rule.matches_packet(packet(Prefix("10.0.0.0/24").first))
        assert not rule.matches_packet(packet(Prefix("10.0.1.0/24").first))
        assert rule.dst_only

    def test_src_constraint(self):
        rule = AclRule(
            AclAction.DENY, dst=Prefix("0.0.0.0/0"), src=Prefix("10.9.0.0/16")
        )
        assert rule.matches_packet(packet(0, src=Prefix("10.9.0.0/16").first))
        assert not rule.matches_packet(packet(0, src=0))
        assert not rule.dst_only

    def test_proto_and_port(self):
        rule = AclRule(
            AclAction.DENY,
            dst=Prefix("0.0.0.0/0"),
            proto=6,
            dport_lo=80,
            dport_hi=443,
        )
        assert rule.matches_packet(packet(0, proto=6, dport=443))
        assert not rule.matches_packet(packet(0, proto=17, dport=80))
        assert not rule.matches_packet(packet(0, proto=6, dport=8080))

    def test_port_bounds_validated(self):
        with pytest.raises(ValueError):
            AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0"), dport_lo=10)
        with pytest.raises(ValueError):
            AclRule(
                AclAction.PERMIT, dst=Prefix("0.0.0.0/0"), dport_lo=20, dport_hi=10
            )

    def test_mixed_not_a_rule_action(self):
        with pytest.raises(ValueError):
            AclRule(AclAction.MIXED, dst=Prefix("0.0.0.0/0"))


class TestFirstMatch:
    def test_implicit_deny(self):
        acl = Acl("empty")
        assert not acl.permits_packet(packet(0))

    def test_first_match_wins(self):
        acl = Acl(
            "shadow",
            [
                AclRule(AclAction.DENY, dst=Prefix("10.0.0.0/24")),
                AclRule(AclAction.PERMIT, dst=Prefix("10.0.0.0/16")),
            ],
        )
        assert not acl.permits_packet(packet(Prefix("10.0.0.0/24").first))
        assert acl.permits_packet(packet(Prefix("10.0.1.0/24").first))

    def test_permit_all_backstop(self):
        acl = Acl(
            "block_one",
            [
                AclRule(AclAction.DENY, dst=Prefix("172.16.5.0/24")),
                AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ],
        )
        assert acl.permits_packet(packet(0))
        assert not acl.permits_packet(packet(Prefix("172.16.5.0/24").first))


class TestProjection:
    def test_projection_covers_space(self):
        acl = Acl(
            "sample",
            [
                AclRule(AclAction.DENY, dst=Prefix("10.0.0.0/8")),
                AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ],
        )
        total = IntervalSet.empty()
        for interval_set, _action in acl.project_dst():
            assert not total.overlaps(interval_set)  # disjoint classes
            total = total.union(interval_set)
        assert total == IntervalSet.full()

    def test_denied_dst(self):
        acl = Acl(
            "deny_block",
            [
                AclRule(AclAction.DENY, dst=Prefix("10.1.0.0/16")),
                AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ],
        )
        denied = acl.denied_dst()
        lo, hi = Prefix("10.1.0.0/16").interval()
        assert denied == IntervalSet.span(lo, hi)

    def test_non_dst_rule_marks_mixed(self):
        acl = Acl(
            "mixed",
            [
                AclRule(
                    AclAction.DENY,
                    dst=Prefix("10.1.0.0/16"),
                    src=Prefix("192.168.0.0/16"),
                ),
                AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ],
        )
        classes = dict(
            (action, interval_set) for interval_set, action in acl.project_dst()
        )
        lo, hi = Prefix("10.1.0.0/16").interval()
        assert classes[AclAction.MIXED] == IntervalSet.span(lo, hi)

    def test_empty_acl_projects_all_deny(self):
        classes = Acl("nothing").project_dst()
        assert classes == [(IntervalSet.full(), AclAction.DENY)]


# Property: for dst-only ACLs, the projection agrees with per-packet
# evaluation at every class representative.
_rule_prefixes = st.sampled_from(
    [
        Prefix("10.0.0.0/8"),
        Prefix("10.1.0.0/16"),
        Prefix("10.1.2.0/24"),
        Prefix("172.16.0.0/12"),
        Prefix("0.0.0.0/0"),
        Prefix("192.168.7.0/24"),
    ]
)
_rules = st.builds(
    AclRule,
    action=st.sampled_from([AclAction.PERMIT, AclAction.DENY]),
    dst=_rule_prefixes,
)


@given(st.lists(_rules, max_size=6))
def test_projection_matches_pointwise_eval(rules):
    acl = Acl("prop", rules)
    for interval_set, action in acl.project_dst():
        assert action is not AclAction.MIXED  # dst-only rules never mix
        for representative in interval_set.sample_points(3):
            permitted = acl.permits_packet(packet(representative))
            assert permitted == (action is AclAction.PERMIT)
