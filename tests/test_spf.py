"""Static SPF: Dijkstra with ECMP parents and first hops."""

from repro.controlplane.rib import NextHop
from repro.controlplane.spf import INFINITY, SpfGraph, dijkstra, first_hops


def nh(u: str, v: str) -> frozenset[NextHop]:
    return frozenset({NextHop(interface=f"{u}:{v}", neighbor=v)})


def diamond() -> SpfGraph:
    """a -> {b, c} -> d, all costs 1 (two equal-cost paths a..d)."""
    graph = SpfGraph()
    for u, v in (("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")):
        graph.set_edge(u, v, 1, nh(u, v))
        graph.set_edge(v, u, 1, nh(v, u))
    return graph


class TestGraph:
    def test_set_and_remove_edge(self):
        graph = diamond()
        assert graph.cost("a", "b") == 1
        graph.remove_edge("a", "b")
        assert graph.cost("a", "b") == INFINITY
        assert "a" not in graph.predecessors("b")

    def test_copy_independent(self):
        graph = diamond()
        copy = graph.copy()
        copy.remove_edge("a", "b")
        assert graph.cost("a", "b") == 1

    def test_num_edges(self):
        assert diamond().num_edges() == 8


class TestDijkstra:
    def test_distances(self):
        dist, _parents = dijkstra(diamond(), "a")
        assert dist == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_ecmp_parents(self):
        _dist, parents = dijkstra(diamond(), "a")
        assert parents["d"] == {"b", "c"}

    def test_unreachable_absent(self):
        graph = diamond()
        graph.add_node("island")
        dist, _ = dijkstra(graph, "a")
        assert "island" not in dist

    def test_weighted_path_choice(self):
        graph = SpfGraph()
        graph.set_edge("a", "b", 10, nh("a", "b"))
        graph.set_edge("a", "c", 1, nh("a", "c"))
        graph.set_edge("c", "b", 2, nh("c", "b"))
        dist, parents = dijkstra(graph, "a")
        assert dist["b"] == 3
        assert parents["b"] == {"c"}


class TestFirstHops:
    def test_direct_neighbor_uses_attachment(self):
        graph = diamond()
        dist, parents = dijkstra(graph, "a")
        fh = first_hops(graph, "a", dist, parents)
        assert fh["b"] == nh("a", "b")

    def test_ecmp_union(self):
        graph = diamond()
        dist, parents = dijkstra(graph, "a")
        fh = first_hops(graph, "a", dist, parents)
        assert fh["d"] == nh("a", "b") | nh("a", "c")

    def test_source_has_no_hops(self):
        graph = diamond()
        dist, parents = dijkstra(graph, "a")
        fh = first_hops(graph, "a", dist, parents)
        assert fh["a"] == frozenset()

    def test_parallel_link_attachments(self):
        graph = SpfGraph()
        hops = frozenset(
            {
                NextHop(interface="eth0", neighbor="b"),
                NextHop(interface="eth1", neighbor="b"),
            }
        )
        graph.set_edge("a", "b", 1, hops)
        dist, parents = dijkstra(graph, "a")
        fh = first_hops(graph, "a", dist, parents)
        assert fh["b"] == hops
