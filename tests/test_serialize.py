"""Versioned JSON round-trips for every public result type.

The contract under test: for any result ``r``,
``dumps(r.to_dict())`` equals
``dumps(type(r).from_dict(r.to_dict()).to_dict())`` with
``sort_keys=True`` — byte-stable round-tripping — and ``from_dict``
rejects unknown ``schema_version`` values and mismatched ``kind``
tags with :class:`~repro.core.serialize.SchemaError`.
"""

import json

import pytest

from repro.api import ChangeSet, Network
from repro.campaign import all_single_link_failures
from repro.campaign.report import CampaignReport, ScenarioOutcome
from repro.core.delta import DeltaReport, ReachSegment
from repro.core.invariants import Violation
from repro.core.serialize import (
    SCHEMA_VERSION,
    SchemaError,
    decode_signature,
    encode_signature,
)
from repro.net.addr import Prefix
from repro.query.paths import PathDiff
from repro.query.trace import PacketTrace
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import internet2_bgp, ring_ospf


def dumps(document) -> str:
    return json.dumps(document, sort_keys=True)


def assert_byte_stable(result) -> None:
    """to_dict -> JSON -> from_dict -> to_dict is byte-identical."""
    document = result.to_dict()
    assert document["schema_version"] == SCHEMA_VERSION
    wire = dumps(document)
    rebuilt = type(result).from_dict(json.loads(wire))
    assert dumps(rebuilt.to_dict()) == wire


@pytest.fixture(scope="module")
def ring6():
    return Network.generate("ring", size=6)


@pytest.fixture(scope="module")
def wan():
    return internet2_bgp().network()


class TestDeltaReport:
    def test_ospf_failure_round_trip(self, ring6):
        report = ring6.preview(ChangeSet("fail").link_down("r0", "r1"))
        assert not report.is_empty()
        assert_byte_stable(report)

    def test_bgp_report_round_trip(self, wan):
        """BGP routes carry attribute bundles — the hard codec case."""
        generator = ChangeGenerator(wan.scenario, seed=7)
        flip = generator.dual_homed_pref_flip(
            primary_pref=100, backup_pref=200
        )
        report = wan.preview(flip)
        assert report.num_rib_changes()
        assert_byte_stable(report)

    def test_round_trip_preserves_semantics(self, ring6):
        report = ring6.preview(ChangeSet("fail").link_down("r2", "r3"))
        rebuilt = DeltaReport.from_dict(json.loads(dumps(report.to_dict())))
        assert rebuilt.label == report.label
        assert rebuilt.num_rib_changes() == report.num_rib_changes()
        assert rebuilt.num_fib_changes() == report.num_fib_changes()
        assert (
            rebuilt.behavior_signature() == report.behavior_signature()
        )

    def test_empty_report_round_trip(self):
        assert_byte_stable(DeltaReport("empty"))


class TestViolation:
    def test_round_trip(self):
        violation = Violation(
            invariant="loop-freedom",
            segment_lo=10,
            segment_hi=20,
            detail="loops through ['r1']",
            repaired=True,
        )
        assert_byte_stable(violation)
        rebuilt = Violation.from_dict(violation.to_dict())
        assert rebuilt == violation


class TestCampaignReport:
    def test_round_trip_with_violations_and_signatures(self, ring6):
        batch = all_single_link_failures(ring6.scenario)
        monitored = ring6.scenario.fabric.all_host_subnets()
        report = ring6.campaign(
            batch,
            invariants=["loop-freedom", "blackhole-freedom"],
            monitored=monitored,
            label="ring6",
        )
        assert len(report) == len(batch)
        assert_byte_stable(report)
        rebuilt = CampaignReport.from_dict(report.to_dict())
        assert rebuilt.signatures() == report.signatures()
        assert [o.name for o in rebuilt.ranked()] == [
            o.name for o in report.ranked()
        ]

    def test_error_outcome_round_trip(self):
        report = CampaignReport("errors", backend="serial", jobs=1)
        report.add(
            ScenarioOutcome(
                name="bad", kind="link-failure", ok=False,
                error="ChangeError: no such link",
            )
        )
        report.finish()
        assert_byte_stable(report)


class TestPacketTrace:
    def test_round_trip(self, ring6):
        target = ring6.scenario.fabric.host_subnets["r3"][0]
        trace = ring6.trace("r0", target.first + 1, proto=6, dport=443)
        assert trace.is_delivered()
        assert_byte_stable(trace)
        rebuilt = PacketTrace.from_dict(trace.to_dict())
        assert rebuilt.delivered_at() == trace.delivered_at()
        assert rebuilt.render() == trace.render()


class TestPathDiff:
    def test_round_trip(self, ring6):
        target = ring6.scenario.fabric.host_subnets["r1"][0]
        diff = ring6.path_diff(
            ChangeSet().link_down("r0", "r1"), "r0", target.first + 1
        )
        assert not diff.is_empty()
        assert_byte_stable(diff)
        assert PathDiff.from_dict(diff.to_dict()) == diff


class TestSchemaRejection:
    RESULTS = [
        (DeltaReport, lambda: DeltaReport("x").to_dict()),
        (
            Violation,
            lambda: Violation("inv", 0, 1, "detail").to_dict(),
        ),
        (
            CampaignReport,
            lambda: CampaignReport("x").finish().to_dict(),
        ),
        (
            PacketTrace,
            lambda: PacketTrace(packet={"dst": 1}, source="r0").to_dict(),
        ),
        (
            PathDiff,
            lambda: PathDiff(
                frozenset(), frozenset(), True, True
            ).to_dict(),
        ),
    ]

    @pytest.mark.parametrize(
        "cls,build", RESULTS, ids=[cls.__name__ for cls, _ in RESULTS]
    )
    def test_unknown_version_rejected(self, cls, build):
        document = build()
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="schema_version"):
            cls.from_dict(document)

    @pytest.mark.parametrize(
        "cls,build", RESULTS, ids=[cls.__name__ for cls, _ in RESULTS]
    )
    def test_missing_version_rejected(self, cls, build):
        document = build()
        del document["schema_version"]
        with pytest.raises(SchemaError):
            cls.from_dict(document)

    def test_wrong_kind_rejected(self):
        document = DeltaReport("x").to_dict()
        with pytest.raises(SchemaError, match="delta-report"):
            PathDiff.from_dict(
                {**document, "kind": "delta-report"}
            )


class TestSignatureCodec:
    def test_nested_tuples_survive_json(self, ring6):
        report = ring6.preview(ChangeSet().link_down("r4", "r5"))
        signature = report.behavior_signature()
        wire = json.loads(dumps(encode_signature(signature)))
        assert decode_signature(wire) == signature

    def test_unknown_tag_rejected(self):
        with pytest.raises(SchemaError, match="unknown signature tag"):
            decode_signature({"$": "mystery", "v": 1})

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_signature({"a": object()})
