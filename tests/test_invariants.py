"""Differential invariant checking."""

from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.delta import DeltaReport, ReachSegment
from repro.core.invariants import (
    BlackholeFreedom,
    IsolationInvariant,
    LoopFreedom,
    ReachabilityInvariant,
    check_invariants,
)
from repro.net.addr import Prefix
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import line_static


def report_with(segment: ReachSegment) -> DeltaReport:
    report = DeltaReport("synthetic")
    report.reach_segments = [segment]
    return report


PREFIX = Prefix("172.16.2.0/24")
LO, HI = PREFIX.interval()


class TestReachabilityInvariant:
    def test_lost_pair_violates(self):
        inv = ReachabilityInvariant("r0", "r2", PREFIX)
        report = report_with(
            ReachSegment(LO, HI, removed=frozenset({("r0", "r2")}))
        )
        (violation,) = inv.check(report)
        assert not violation.repaired
        assert "lost" in violation.detail

    def test_regained_pair_reports_repair(self):
        inv = ReachabilityInvariant("r0", "r2", PREFIX)
        report = report_with(ReachSegment(LO, HI, added=frozenset({("r0", "r2")})))
        (violation,) = inv.check(report)
        assert violation.repaired

    def test_non_overlapping_segment_ignored(self):
        inv = ReachabilityInvariant("r0", "r2", Prefix("10.99.0.0/24"))
        report = report_with(
            ReachSegment(LO, HI, removed=frozenset({("r0", "r2")}))
        )
        assert inv.check(report) == []

    def test_other_pairs_ignored(self):
        inv = ReachabilityInvariant("r0", "r2", PREFIX)
        report = report_with(
            ReachSegment(LO, HI, removed=frozenset({("r1", "r2")}))
        )
        assert inv.check(report) == []


class TestIsolationInvariant:
    def test_leak_detected(self):
        inv = IsolationInvariant("r0", "r2", PREFIX)
        report = report_with(ReachSegment(LO, HI, added=frozenset({("r0", "r2")})))
        (violation,) = inv.check(report)
        assert "leak" in violation.detail and not violation.repaired


class TestLoopAndBlackhole:
    def test_loop_freedom(self):
        report = report_with(ReachSegment(LO, HI, loops_added=frozenset({"r1"})))
        (violation,) = LoopFreedom().check(report)
        assert "r1" in violation.detail

    def test_blackhole_monitored_scope(self):
        inv = BlackholeFreedom(monitored=[Prefix("10.99.0.0/24")])
        report = report_with(
            ReachSegment(LO, HI, blackholes_added=frozenset({"r1"}))
        )
        assert inv.check(report) == []  # outside monitored space

    def test_blackhole_allowed_routers_exempt(self):
        inv = BlackholeFreedom(allowed=frozenset({"r1"}))
        report = report_with(
            ReachSegment(LO, HI, blackholes_added=frozenset({"r1"}))
        )
        assert inv.check(report) == []


class TestEndToEnd:
    def test_link_failure_trips_reachability(self):
        scenario = line_static(3)
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
        target = scenario.fabric.host_subnets["r2"][0]
        invariants = [
            ReachabilityInvariant("r0", "r2", target),
            LoopFreedom(),
        ]
        generator = ChangeGenerator(scenario, seed=1)
        down, up = generator.random_link_failure()
        # Force the specific failure between r1 and r2.
        from repro.core.change import Change, LinkDown, LinkUp

        report = analyzer.analyze(Change.of(LinkDown("r1", "r2")))
        results = check_invariants(report, invariants)
        assert any("reach" in name for name in results)
        report = analyzer.analyze(Change.of(LinkUp("r1", "r2")))
        results = check_invariants(report, invariants)
        (violations,) = results.values()
        assert all(v.repaired for v in violations)
