"""Differential invariant checking and the name registry."""

import pytest

from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.delta import DeltaReport, ReachSegment
from repro.core.invariants import (
    BlackholeFreedom,
    Invariant,
    IsolationInvariant,
    LoopFreedom,
    ReachabilityInvariant,
    _check_invariants,
    invariant_class,
    make_invariant,
    register_invariant,
    registered_invariants,
)
from repro.net.addr import Prefix
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import line_static


def report_with(segment: ReachSegment) -> DeltaReport:
    report = DeltaReport("synthetic")
    report.reach_segments = [segment]
    return report


PREFIX = Prefix("172.16.2.0/24")
LO, HI = PREFIX.interval()


class TestReachabilityInvariant:
    def test_lost_pair_violates(self):
        inv = ReachabilityInvariant("r0", "r2", PREFIX)
        report = report_with(
            ReachSegment(LO, HI, removed=frozenset({("r0", "r2")}))
        )
        (violation,) = inv.check(report)
        assert not violation.repaired
        assert "lost" in violation.detail

    def test_regained_pair_reports_repair(self):
        inv = ReachabilityInvariant("r0", "r2", PREFIX)
        report = report_with(ReachSegment(LO, HI, added=frozenset({("r0", "r2")})))
        (violation,) = inv.check(report)
        assert violation.repaired

    def test_non_overlapping_segment_ignored(self):
        inv = ReachabilityInvariant("r0", "r2", Prefix("10.99.0.0/24"))
        report = report_with(
            ReachSegment(LO, HI, removed=frozenset({("r0", "r2")}))
        )
        assert inv.check(report) == []

    def test_other_pairs_ignored(self):
        inv = ReachabilityInvariant("r0", "r2", PREFIX)
        report = report_with(
            ReachSegment(LO, HI, removed=frozenset({("r1", "r2")}))
        )
        assert inv.check(report) == []


class TestIsolationInvariant:
    def test_leak_detected(self):
        inv = IsolationInvariant("r0", "r2", PREFIX)
        report = report_with(ReachSegment(LO, HI, added=frozenset({("r0", "r2")})))
        (violation,) = inv.check(report)
        assert "leak" in violation.detail and not violation.repaired


class TestLoopAndBlackhole:
    def test_loop_freedom(self):
        report = report_with(ReachSegment(LO, HI, loops_added=frozenset({"r1"})))
        (violation,) = LoopFreedom().check(report)
        assert "r1" in violation.detail

    def test_blackhole_monitored_scope(self):
        inv = BlackholeFreedom(monitored=[Prefix("10.99.0.0/24")])
        report = report_with(
            ReachSegment(LO, HI, blackholes_added=frozenset({"r1"}))
        )
        assert inv.check(report) == []  # outside monitored space

    def test_blackhole_allowed_routers_exempt(self):
        inv = BlackholeFreedom(allowed=frozenset({"r1"}))
        report = report_with(
            ReachSegment(LO, HI, blackholes_added=frozenset({"r1"}))
        )
        assert inv.check(report) == []


class TestEndToEnd:
    def test_link_failure_trips_reachability(self):
        scenario = line_static(3)
        analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
        target = scenario.fabric.host_subnets["r2"][0]
        invariants = [
            ReachabilityInvariant("r0", "r2", target),
            LoopFreedom(),
        ]
        generator = ChangeGenerator(scenario, seed=1)
        down, up = generator.random_link_failure()
        # Force the specific failure between r1 and r2.
        from repro.core.change import Change, LinkDown, LinkUp

        report = analyzer.analyze(Change.of(LinkDown("r1", "r2")))
        results = _check_invariants(report, invariants)
        assert any("reach" in name for name in results)
        report = analyzer.analyze(Change.of(LinkUp("r1", "r2")))
        results = _check_invariants(report, invariants)
        (violations,) = results.values()
        assert all(v.repaired for v in violations)


class TestRegistry:
    def test_builtins_registered(self):
        registry = registered_invariants()
        assert registry["loop-freedom"] is LoopFreedom
        assert registry["blackhole-freedom"] is BlackholeFreedom
        assert registry["reachability"] is ReachabilityInvariant
        assert registry["isolation"] is IsolationInvariant

    def test_invariant_class_lookup(self):
        assert invariant_class("loop-freedom") is LoopFreedom

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="unknown invariant"):
            invariant_class("does-not-exist")
        with pytest.raises(ValueError, match="loop-freedom"):
            make_invariant("does-not-exist")

    def test_make_invariant_passes_kwargs(self):
        monitored = [Prefix("10.99.0.0/24")]
        inv = make_invariant("blackhole-freedom", monitored=monitored)
        assert isinstance(inv, BlackholeFreedom)
        assert inv.monitored == monitored

    def test_reregistering_same_class_is_idempotent(self):
        register_invariant("loop-freedom", LoopFreedom)
        assert invariant_class("loop-freedom") is LoopFreedom

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_invariant("loop-freedom", BlackholeFreedom)

    def test_decorator_registration(self):
        registry_before = set(registered_invariants())

        @register_invariant("test-always-clean")
        class AlwaysClean(Invariant):
            name = "test-always-clean"

            def check_segment(self, segment):
                return []

        try:
            assert invariant_class("test-always-clean") is AlwaysClean
            report = report_with(
                ReachSegment(LO, HI, removed=frozenset({("r0", "r2")}))
            )
            assert make_invariant("test-always-clean").check(report) == []
        finally:
            # Leave the global registry as we found it.
            from repro.core import invariants as module

            module._REGISTRY.pop("test-always-clean", None)
            assert set(registered_invariants()) == registry_before
