"""Header space algebra."""

import pytest

from repro.net.addr import Prefix
from repro.net.headerspace import HeaderSpace, field_full, union_of_dst
from repro.net.interval import IntervalSet


class TestConstruction:
    def test_full_matches_everything(self):
        packet = {"src": 1, "dst": 2, "proto": 6, "dport": 80}
        assert HeaderSpace.full().contains_packet(packet)

    def test_empty_matches_nothing(self):
        assert HeaderSpace.empty().is_empty()
        assert not HeaderSpace.empty().contains_packet(
            {"src": 1, "dst": 2, "proto": 6, "dport": 80}
        )

    def test_empty_field_collapses_whole_space(self):
        space = HeaderSpace({"dst": IntervalSet.empty()})
        assert space.is_empty()

    def test_full_field_kept_implicit(self):
        space = HeaderSpace({"proto": field_full("proto")})
        assert space.constrained_fields() == ()

    def test_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            HeaderSpace({"ttl": IntervalSet.point(3)})

    def test_dst_prefix(self):
        space = HeaderSpace.dst_prefix(Prefix("10.0.0.0/24"))
        assert space.contains_packet({"src": 0, "dst": Prefix("10.0.0.0/24").first + 9, "proto": 0, "dport": 0})
        assert not space.contains_packet({"src": 0, "dst": 0, "proto": 0, "dport": 0})

    def test_dport_range_inclusive(self):
        space = HeaderSpace.dport_range(80, 81)
        assert space.field("dport").contains(80)
        assert space.field("dport").contains(81)
        assert not space.field("dport").contains(82)


class TestAlgebra:
    def test_intersect_narrows(self):
        a = HeaderSpace.dst_prefix(Prefix("10.0.0.0/8"))
        b = HeaderSpace.dst_prefix(Prefix("10.1.0.0/16"))
        both = a.intersect(b)
        assert both.field("dst") == b.field("dst")

    def test_disjoint_intersection_empty(self):
        a = HeaderSpace.dst_prefix(Prefix("10.0.0.0/16"))
        b = HeaderSpace.dst_prefix(Prefix("10.1.0.0/16"))
        assert a.intersect(b).is_empty()
        assert not a.overlaps(b)

    def test_intersect_across_fields(self):
        a = HeaderSpace.protocol(6)
        b = HeaderSpace.dport_range(80, 80)
        both = a.intersect(b)
        assert both.constrained_fields() == ("proto", "dport")

    def test_subtract_field(self):
        a = HeaderSpace.dst_prefix(Prefix("10.0.0.0/24"))
        lo, hi = Prefix("10.0.0.0/25").interval()
        remaining = a.subtract_field("dst", IntervalSet.span(lo, hi))
        assert remaining.field("dst").size == 128

    def test_union_of_dst(self):
        spaces = [
            HeaderSpace.dst_prefix(Prefix("10.0.0.0/24")),
            HeaderSpace.dst_prefix(Prefix("10.0.1.0/24")),
            HeaderSpace.empty(),
        ]
        union = union_of_dst(spaces)
        assert union.size == 512

    def test_equality_and_hash(self):
        a = HeaderSpace.protocol(6)
        b = HeaderSpace({"proto": IntervalSet.point(6)})
        assert a == b
        assert hash(a) == hash(b)
