"""The typed error hierarchy: one base, backward-compatible leaves.

Acceptance (ISSUE 8 satellite): ``repro.api`` raises typed errors
rooted at :class:`ReproError`; existing callers catching
``ValueError``/``RuntimeError`` keep working.
"""

import pytest

from repro.api import Network
from repro.api.errors import (
    ChangeError,
    ChangeParseError,
    ConvergenceError,
    InvalidChangeError,
    ProtocolError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    def test_everything_roots_at_repro_error(self):
        for cls in (
            SchemaError,
            ConvergenceError,
            InvalidChangeError,
            ChangeError,
            ChangeParseError,
            ProtocolError,
        ):
            assert issubclass(cls, ReproError), cls

    def test_backward_compatible_builtin_bases(self):
        # Callers written against the old bare raises keep working.
        assert issubclass(SchemaError, ValueError)
        assert issubclass(InvalidChangeError, ValueError)
        assert issubclass(ProtocolError, ValueError)
        assert issubclass(ConvergenceError, RuntimeError)

    def test_change_errors_narrow_invalid_change(self):
        assert issubclass(ChangeError, InvalidChangeError)
        assert issubclass(ChangeParseError, InvalidChangeError)


class TestRaisedTypes:
    def test_unknown_topology_is_invalid_change(self):
        with pytest.raises(InvalidChangeError, match="unknown topology"):
            Network.generate("moebius")

    def test_schema_skew_is_schema_error(self):
        from repro.core.serialize import check_document

        with pytest.raises(SchemaError):
            check_document({"kind": "x", "schema_version": 999}, "x")

    def test_parse_error_is_catchable_as_repro_error(self):
        from repro.core.change_text import parse_change_batch

        with pytest.raises(ReproError):
            parse_change_batch("frobnicate the uplink", label="x")

    def test_envelope_round_trip(self):
        from repro.core.serialize import check_envelope, document, envelope

        doc = document("pong", {"value": 1})
        wrapped = envelope(doc)
        assert wrapped["kind"] == "pong"
        assert check_envelope(wrapped) == doc
        with pytest.raises(SchemaError):
            check_envelope({"kind": "pong", "schema_version": 1})
