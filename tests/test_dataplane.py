"""DataPlane actions, ACL verdicts, and per-atom reachability."""

import pytest

from repro.config.acl import Acl, AclAction, AclRule
from repro.config.routing import StaticRouteConfig
from repro.controlplane.simulation import simulate
from repro.core.change import AddStaticRoute, BindAcl, Change
from repro.dataplane.forwarding import TargetKind
from repro.dataplane.reachability import compute_atom_reachability
from repro.net.addr import Prefix
from repro.workloads.scenarios import line_static, ring_ospf


@pytest.fixture()
def line_state():
    scenario = line_static(3)
    return scenario, simulate(scenario.snapshot)


class TestActions:
    def test_forward_action(self, line_state):
        scenario, state = line_state
        target = scenario.fabric.host_subnets["r2"][0]
        atom = state.dataplane.atom_table.atom_containing(target.first + 1)
        action = state.dataplane.action("r0", atom)
        assert action.forward_neighbors() == {"r1"}
        assert not action.delivers()

    def test_deliver_action(self, line_state):
        scenario, state = line_state
        target = scenario.fabric.host_subnets["r2"][0]
        atom = state.dataplane.atom_table.atom_containing(target.first + 1)
        action = state.dataplane.action("r2", atom)
        assert action.delivers()

    def test_blackhole_on_unrouted_space(self, line_state):
        _scenario, state = line_state
        atom = state.dataplane.atom_table.atom_containing(
            Prefix("203.0.113.0/24").first
        )
        action = state.dataplane.action("r0", atom)
        assert action.is_blackhole()

    def test_null_route_drops(self):
        scenario = line_static(3)
        scenario.snapshot.config("r0").add_static_route(
            StaticRouteConfig(Prefix("198.51.100.0/24"), drop=True)
        )
        state = simulate(scenario.snapshot)
        atom = state.dataplane.atom_table.atom_containing(
            Prefix("198.51.100.0/24").first
        )
        action = state.dataplane.action("r0", atom)
        assert action.drops_everything()
        assert not action.is_blackhole()

    def test_egress_acl_denies(self):
        scenario = line_static(3)
        victim = scenario.fabric.host_subnets["r2"][0]
        config = scenario.snapshot.config("r0")
        config.acls["BLK"] = Acl(
            "BLK",
            [
                AclRule(AclAction.DENY, dst=victim),
                AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ],
        )
        config.ensure_interface("eth1").acl_out = "BLK"
        state = simulate(scenario.snapshot)
        atom = state.dataplane.atom_table.atom_containing(victim.first + 1)
        action = state.dataplane.action("r0", atom)
        assert action.forward_neighbors() == frozenset()
        kinds = {t.kind for t in action.targets}
        assert kinds == {TargetKind.DROP}

    def test_ingress_acl_on_peer_denies(self):
        scenario = line_static(3)
        victim = scenario.fabric.host_subnets["r2"][0]
        config = scenario.snapshot.config("r1")
        config.acls["BLK"] = Acl(
            "BLK",
            [
                AclRule(AclAction.DENY, dst=victim),
                AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ],
        )
        config.ensure_interface("eth0").acl_in = "BLK"  # faces r0
        state = simulate(scenario.snapshot)
        atom = state.dataplane.atom_table.atom_containing(victim.first + 1)
        # r0's forward into r1 dies at r1's ingress filter.
        assert state.dataplane.action("r0", atom).forward_neighbors() == frozenset()
        # r1 itself still forwards on to r2.
        assert state.dataplane.action("r1", atom).forward_neighbors() == {"r2"}

    def test_mixed_acl_flags_action(self):
        scenario = line_static(3)
        victim = scenario.fabric.host_subnets["r2"][0]
        config = scenario.snapshot.config("r0")
        config.acls["SRC"] = Acl(
            "SRC",
            [
                AclRule(
                    AclAction.DENY, dst=victim, src=Prefix("192.168.0.0/16")
                ),
                AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0")),
            ],
        )
        config.ensure_interface("eth1").acl_out = "SRC"
        state = simulate(scenario.snapshot)
        atom = state.dataplane.atom_table.atom_containing(victim.first + 1)
        action = state.dataplane.action("r0", atom)
        assert action.mixed
        assert action.forward_neighbors() == {"r1"}  # conservatively kept


class TestReachability:
    def test_all_sources_reach_owner(self, line_state):
        scenario, state = line_state
        target = scenario.fabric.host_subnets["r2"][0]
        atom = state.dataplane.atom_table.atom_containing(target.first + 1)
        reach = compute_atom_reachability(state.dataplane, atom)
        assert reach.owners == {"r2"}
        assert reach.sources["r2"] == {"r0", "r1", "r2"}

    def test_pair_set(self, line_state):
        scenario, state = line_state
        target = scenario.fabric.host_subnets["r0"][0]
        atom = state.dataplane.atom_table.atom_containing(target.first + 1)
        reach = compute_atom_reachability(state.dataplane, atom)
        assert ("r2", "r0") in reach.pair_set()
        assert reach.reaches("r1", "r0")

    def test_unrouted_space_all_blackholes(self, line_state):
        _scenario, state = line_state
        atom = state.dataplane.atom_table.atom_containing(
            Prefix("203.0.113.0/24").first
        )
        reach = compute_atom_reachability(state.dataplane, atom)
        assert reach.owners == frozenset()
        assert reach.blackhole_routers == {"r0", "r1", "r2"}

    def test_static_loop_detected(self):
        # r0 and r1 point a scratch prefix at each other.
        scenario = line_static(2)
        snapshot = scenario.snapshot
        loop_prefix = Prefix("198.51.100.0/24")
        r1_ip = snapshot.topology.interface_peer("r0", "eth1").address
        r0_ip = snapshot.topology.interface_peer("r1", "eth0").address
        Change.of(
            AddStaticRoute("r0", StaticRouteConfig(loop_prefix, next_hop=r1_ip)),
            AddStaticRoute("r1", StaticRouteConfig(loop_prefix, next_hop=r0_ip)),
        ).apply(snapshot)
        state = simulate(snapshot)
        atom = state.dataplane.atom_table.atom_containing(loop_prefix.first)
        reach = compute_atom_reachability(state.dataplane, atom)
        assert reach.loop_routers == {"r0", "r1"}

    def test_ring_default_no_loops(self):
        scenario = ring_ospf(5)
        state = simulate(scenario.snapshot, precompute_reachability=True)
        for atom in state.dataplane.atom_table.atoms():
            assert state.reachability.for_atom(atom).loop_routers == frozenset()

    def test_reaches_point_query(self, line_state):
        scenario, state = line_state
        target = scenario.fabric.host_subnets["r2"][0]
        assert state.reachability.reaches("r0", "r2", target.first + 1)


class TestIncrementalMaintenance:
    def test_fib_update_dirty_atoms(self, line_state):
        _scenario, state = line_state
        from repro.dataplane.fib import FibEntry
        from repro.controlplane.rib import NextHop

        prefix = Prefix("198.51.100.0/24")
        entry = FibEntry(
            prefix, frozenset({NextHop(interface="eth1", neighbor="r1")})
        )
        dirty = state.dataplane.update_fib_entry("r0", prefix, entry)
        lo, hi = prefix.interval()
        assert any(a.lo == lo and a.hi == hi for a in dirty)
        atom = state.dataplane.atom_table.atom_containing(lo)
        assert state.dataplane.action("r0", atom).forward_neighbors() == {"r1"}

    def test_split_inherits_parent_actions(self, line_state):
        scenario, state = line_state
        # Warm the cache for the big unrouted atom.
        probe = Prefix("198.51.100.0/24")
        parent = state.dataplane.atom_table.atom_containing(probe.first)
        before = state.dataplane.action("r1", parent)
        from repro.dataplane.fib import FibEntry
        from repro.controlplane.rib import NextHop

        entry = FibEntry(
            probe, frozenset({NextHop(interface="eth1", neighbor="r1")})
        )
        state.dataplane.update_fib_entry("r0", probe, entry)
        # r1's behaviour in the split-off sibling atoms is unchanged
        # and must come from the inherited cache without recompute.
        sibling = state.dataplane.atom_table.atom_containing(probe.last + 1)
        assert state.dataplane.action("r1", sibling) == before

    def test_remove_entry_merges_and_restores(self, line_state):
        _scenario, state = line_state
        from repro.dataplane.fib import FibEntry
        from repro.controlplane.rib import NextHop

        prefix = Prefix("198.51.100.0/24")
        atoms_before = state.dataplane.atom_table.num_atoms()
        entry = FibEntry(
            prefix, frozenset({NextHop(interface="eth1", neighbor="r1")})
        )
        state.dataplane.update_fib_entry("r0", prefix, entry)
        assert state.dataplane.atom_table.num_atoms() == atoms_before + 2
        state.dataplane.update_fib_entry("r0", prefix, None)
        assert state.dataplane.atom_table.num_atoms() == atoms_before

    def test_remove_missing_entry_noop(self, line_state):
        _scenario, state = line_state
        dirty = state.dataplane.update_fib_entry(
            "r0", Prefix("198.51.100.0/24"), None
        )
        assert dirty == set()
