"""Top-level lazy exports and package hygiene."""

import pytest

import repro


class TestLazyExports:
    def test_version(self):
        assert repro.__version__

    def test_core_symbols_resolve(self):
        for name in (
            "Network",
            "ChangeSet",
            "SchemaError",
            "Violation",
            "register_invariant",
            "make_invariant",
            "Snapshot",
            "DifferentialNetworkAnalyzer",
            "SnapshotDiff",
            "LinkDown",
            "ShutdownInterface",
            "fat_tree",
            "internet2",
            "Prefix",
            "IPv4Address",
            "trace_packet",
            "parse_change",
            "parse_change_batch",
            "simulate",
            "EquivalenceOracle",
            "DirtySet",
            "register_change_handler",
            "registered_change_handlers",
            "compose_reports",
        ):
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist  # noqa: B018

    def test_dir_lists_exports(self):
        listing = dir(repro)
        assert "DifferentialNetworkAnalyzer" in listing
        assert "__version__" in listing

    def test_export_map_is_accurate(self):
        # Every advertised export must resolve (guards against typos
        # in the lazy table).
        for name in repro._EXPORTS:
            assert getattr(repro, name) is not None

    def test_end_to_end_via_top_level_api(self):
        snapshot_cls = repro.Snapshot
        analyzer_cls = repro.DifferentialNetworkAnalyzer
        from repro.workloads.scenarios import ring_ospf

        scenario = ring_ospf(4)
        assert isinstance(scenario.snapshot, snapshot_cls)
        analyzer = analyzer_cls(scenario.snapshot)
        report = analyzer.analyze(
            repro.Change.of(repro.LinkDown("r0", "r1"), label="x")
        )
        assert not report.is_empty()
