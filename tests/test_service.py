"""The always-on what-if service: isolation, cache, typed errors.

Acceptance (ISSUE 8): N overlapping service requests return results
byte-identical to serial in-process ``Network.preview``; a warm cache
hit is byte-identical to its cold miss and never touches the analysis
pipeline (no ``pipeline.*`` spans, no extra ``analyze.calls``).
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Network
from repro.api.errors import (
    ChangeParseError,
    InvalidChangeError,
    ProtocolError,
    ReproError,
)
from repro.core.change_text import parse_change_batch
from repro.service import ReproService, ResultCache, ServiceClient
from repro.service import protocol
from repro.service.cache import change_digest, options_digest


def ring_network(trace: bool = False) -> Network:
    return Network.generate("ring", size=6, trace=trace)


SCRIPTS = [f"link down r{i} r{(i + 1) % 6}" for i in range(6)]


@pytest.fixture(scope="module")
def live():
    """One traced service on an ephemeral TCP port, shared per module."""
    service = ReproService(ring_network(trace=True), cache_size=64)
    address = service.start_in_thread("127.0.0.1:0")
    yield service, address
    service.stop()


def connect(address: str) -> ServiceClient:
    return ServiceClient.connect(address)


class TestProtocol:
    def test_parse_address_forms(self):
        assert protocol.parse_address("127.0.0.1:7421") == (
            "tcp", "127.0.0.1", 7421
        )
        assert protocol.parse_address("/tmp/svc.sock") == (
            "unix", "/tmp/svc.sock", 0
        )
        with pytest.raises(ProtocolError):
            protocol.parse_address("no-port-here")

    def test_frames_are_canonical_lines(self):
        frame = protocol.request(1, "ping", {})
        line = protocol.encode_frame(frame)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert protocol.decode_frame(line, "request") == frame

    def test_error_frame_round_trips_typed(self):
        original = ChangeParseError(2, "frobnicate", "unknown directive")
        frame = protocol.error_frame(3, "preview", original)
        assert frame["error"]["type"] == "ChangeParseError"
        with pytest.raises(ChangeParseError, match="unknown directive"):
            protocol.raise_error_frame(frame)

    def test_unknown_exception_degrades_to_repro_error(self):
        frame = protocol.error_frame(3, "preview", KeyError("internal"))
        assert frame["error"]["type"] == "ProtocolError"
        frame = protocol.error_frame(3, "preview", InvalidChangeError("x"))
        assert frame["error"]["type"] == "InvalidChangeError"

    def test_strip_timings_zeroes_wall_clock_only(self):
        doc = {
            "timings": {"total": 1.5},
            "duration": 2.0,
            "wall_time": 3.0,
            "outcomes": [{"duration": 4.0, "deltas": 7}],
            "name": "duration",  # a *string* named like a field survives
        }
        stripped = protocol.strip_timings(doc)
        assert stripped["timings"] == {}
        assert stripped["duration"] == 0.0
        assert stripped["wall_time"] == 0.0
        assert stripped["outcomes"][0] == {"duration": 0.0, "deltas": 7}
        assert stripped["name"] == "duration"
        assert doc["duration"] == 2.0  # original untouched


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        cache.put(("a", "b", "c"), "1")
        cache.put(("d", "e", "f"), "2")
        assert cache.get(("a", "b", "c")) == "1"  # refresh recency
        cache.put(("g", "h", "i"), "3")  # evicts the cold ("d","e","f")
        assert cache.get(("d", "e", "f")) is None
        assert cache.get(("a", "b", "c")) == "1"
        assert cache.evictions == 1

    def test_generation_move_invalidates_wholesale(self):
        cache = ResultCache()
        cache.ensure_generation(0)
        cache.put(("a", "b", "c"), "1")
        cache.ensure_generation(0)
        assert len(cache) == 1
        cache.ensure_generation(1)
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_eviction_under_invalidation_ordering(self):
        # Invalidation clears wholesale and must NOT count as (or
        # interact with) LRU eviction: the counters stay disjoint and
        # the LRU order restarts empty after a generation move.
        cache = ResultCache(maxsize=2)
        cache.ensure_generation(0)
        cache.put(("a", "a", "a"), "1")
        cache.put(("b", "b", "b"), "2")
        cache.put(("c", "c", "c"), "3")  # LRU-evicts ("a","a","a")
        assert cache.evictions == 1
        cache.ensure_generation(1)  # wholesale clear, not an eviction
        assert len(cache) == 0
        assert cache.evictions == 1
        assert cache.invalidations == 1
        # Post-invalidation the bound starts fresh: two puts fit with
        # no further eviction, and pre-invalidation survivors are gone.
        cache.put(("b", "b", "b"), "2'")
        cache.put(("d", "d", "d"), "4")
        assert cache.evictions == 1
        assert cache.get(("c", "c", "c")) is None
        assert cache.get(("b", "b", "b")) == "2'"

    def test_first_generation_sighting_does_not_invalidate(self):
        cache = ResultCache()
        cache.put(("a", "a", "a"), "1")
        cache.ensure_generation(7)  # first sighting just pins it
        assert len(cache) == 1
        assert cache.invalidations == 0

    def test_overwrite_same_key_is_not_an_eviction(self):
        cache = ResultCache(maxsize=1)
        cache.put(("a", "a", "a"), "1")
        cache.put(("a", "a", "a"), "1'")
        assert cache.evictions == 0
        assert cache.get(("a", "a", "a")) == "1'"

    def test_stats_counters_are_complete(self):
        cache = ResultCache(maxsize=1)
        cache.get(("a", "a", "a"))  # miss
        cache.put(("a", "a", "a"), "1")
        cache.get(("a", "a", "a"))  # hit
        cache.put(("b", "b", "b"), "2")  # evicts
        cache.ensure_generation(0)
        cache.ensure_generation(1)  # invalidates
        assert cache.stats() == {
            "entries": 0,
            "maxsize": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "invalidations": 1,
        }

    def test_change_digest_ignores_formatting(self):
        loose = parse_change_batch(
            "# comment\n\nlink  down   r0 r1\n", label="x"
        )
        tight = parse_change_batch("link down r0 r1", label="x")
        assert change_digest(loose) == change_digest(tight)

    def test_options_digest_ignores_key_order(self):
        assert options_digest({"a": 1, "b": 2}) == options_digest(
            {"b": 2, "a": 1}
        )


class TestServiceRequests:
    def test_ping_reports_base_digest(self, live):
        service, address = live
        with connect(address) as client:
            pong = client.ping()
        assert pong["base_digest"] == service.base_digest
        assert pong["generation"] == 0

    def test_preview_matches_in_process_facade(self, live):
        _, address = live
        script = SCRIPTS[0]
        with ring_network() as local:
            changes = parse_change_batch(script, label="s")
            expected = local.preview(changes, label="s").to_dict()
        with connect(address) as client:
            report = client.preview(script, label="s")
        assert json.dumps(
            report.to_dict(), sort_keys=True
        ) == json.dumps(protocol.strip_timings(expected), sort_keys=True)

    def test_warm_hit_is_byte_identical_and_skips_pipeline(self, live):
        service, address = live
        script = "link down r2 r3"
        with connect(address) as client:
            cold = client.request("preview", script=script, label="w")
            assert client.last_cache == "miss"
            spans_before = len(list(service.network.tracer.walk()))
            calls_before = service.network.metrics.counter(
                "analyze.calls"
            ).value
            warm = client.request("preview", script=script, label="w")
            assert client.last_cache == "hit"
        assert json.dumps(warm, sort_keys=True) == json.dumps(
            cold, sort_keys=True
        )
        # The hit's only new span is service.preview itself — the
        # analysis pipeline never ran again.
        new_spans = list(service.network.tracer.walk())[spans_before:]
        names = [span.name for span in new_spans]
        assert "service.preview" in names
        assert not any(name.startswith("pipeline.") for name in names)
        assert service.network.metrics.counter(
            "analyze.calls"
        ).value == calls_before

    def test_eight_concurrent_requests_match_serial(self, live):
        _, address = live
        with ring_network() as local:
            serial = {}
            for script in SCRIPTS:
                changes = parse_change_batch(script, label=script)
                serial[script] = json.dumps(
                    protocol.strip_timings(
                        local.preview(changes, label=script).to_dict()
                    ),
                    sort_keys=True,
                )

        def one(script):
            with connect(address) as client:
                report = client.preview(script, label=script)
            return script, json.dumps(report.to_dict(), sort_keys=True)

        # 8 overlapping requests (6 distinct + 2 repeats) on 8 threads.
        batch = SCRIPTS + SCRIPTS[:2]
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(one, batch))
        assert len(results) == 8
        for script, payload in results:
            assert payload == serial[script], script

    def test_explain_answer_matches_cli_schema(self, live):
        _, address = live
        with connect(address) as client:
            answer = client.explain("link down r0 r1", edit=0)
        assert answer["kind"] == "explain-answer"
        assert answer["edit"]["edit"]["id"] == 0
        assert answer["edit"]["fib"]

    def test_campaign_over_the_wire(self, live):
        _, address = live
        scenarios = [
            {"name": f"fail {s}", "script": s} for s in SCRIPTS[:3]
        ]
        with connect(address) as client:
            report = client.campaign(
                scenarios, invariants=["loop-freedom"], label="svc"
            )
        assert len(report) == 3
        assert not report.failed()

    def test_stats_counts_requests_and_cache(self, live):
        service, address = live
        with connect(address) as client:
            client.ping()
            stats = client.stats()
        assert stats["kind"] == "service-stats"
        assert stats["base_digest"] == service.base_digest
        assert stats["requests"]["ping"] >= 1
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["entries"] >= 1


class TestServiceErrors:
    def test_parse_error_crosses_the_wire_typed(self, live):
        _, address = live
        with connect(address) as client:
            with pytest.raises(ChangeParseError, match="unknown"):
                client.preview("frobnicate the uplink")
            # The connection survives an error frame.
            assert client.ping()["kind"] == "pong"

    def test_unknown_op_is_a_protocol_error(self, live):
        _, address = live
        with connect(address) as client:
            with pytest.raises(ProtocolError, match="unknown op"):
                client.request("reticulate")

    def test_missing_script_is_a_protocol_error(self, live):
        _, address = live
        with connect(address) as client:
            with pytest.raises(ProtocolError, match="script"):
                client.request("preview")

    def test_garbage_line_gets_an_error_frame(self, live):
        _, address = live
        with connect(address) as client:
            client._socket.sendall(b"this is not json\n")
            line = client._reader.readline()
        frame = protocol.decode_frame(line, "response")
        assert frame["kind"] == "error"
        with pytest.raises(ProtocolError):
            protocol.raise_error_frame(frame)


class TestLifecycle:
    def test_shutdown_request_stops_the_service(self):
        service = ReproService(ring_network(), cache_size=4)
        address = service.start_in_thread("127.0.0.1:0")
        with connect(address) as client:
            reply = client.shutdown()
        assert reply["stopping"] is True

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        service = ReproService(ring_network(), cache_size=4)
        try:
            address = service.start_in_thread(path)
            assert address == path
            with connect(address) as client:
                assert client.ping()["kind"] == "pong"
        finally:
            service.stop()

    def test_network_connect_returns_a_client(self, live):
        _, address = live
        with Network.connect(address) as remote:
            assert isinstance(remote, ServiceClient)
            assert remote.ping()["generation"] == 0

    def test_network_close_and_context_manager(self):
        with ring_network() as network:
            network.preview(
                parse_change_batch("link down r0 r1", label="x")
            )
            assert network._analyzer is not None
        assert network._analyzer is None  # close() released the base

    def test_cache_size_flows_through(self):
        service = ReproService(ring_network(), cache_size=7)
        assert service.cache.maxsize == 7
        with pytest.raises(ValueError):
            ResultCache(0)
