"""Campaign engine: enumeration, execution backends, aggregation.

The load-bearing property is backend equivalence: the multiprocessing
backend must produce per-scenario reports identical to the serial one
(same signatures, same order) because both evaluate forks of the same
converged base state.
"""

from __future__ import annotations

import pickle

import pytest

from repro.campaign import (
    CampaignRunner,
    ScenarioOutcome,
    WhatIfScenario,
    acl_block_sweep,
    all_single_link_failures,
    bgp_policy_sweep,
    sampled_k_link_failures,
)
from repro.core.change import Change, LinkDown
from repro.core.invariants import LoopFreedom, ReachabilityInvariant
from repro.workloads.scenarios import ring_ospf


class TestScenarioEnumeration:
    def test_all_single_link_failures_cover_every_link(self, ring8_scenario):
        batch = all_single_link_failures(ring8_scenario)
        assert len(batch) == ring8_scenario.topology.num_links()
        assert len({s.name for s in batch}) == len(batch)
        assert all(s.kind == "link-failure" for s in batch)

    def test_customer_links_excluded_by_default(self, internet2_scenario):
        with_customers = all_single_link_failures(
            internet2_scenario, include_customer_links=True
        )
        without = all_single_link_failures(internet2_scenario)
        assert len(with_customers) > len(without)

    def test_sampled_k_link_failures_deterministic_and_distinct(
        self, ring8_scenario
    ):
        first = sampled_k_link_failures(ring8_scenario, k=2, samples=8, seed=4)
        second = sampled_k_link_failures(ring8_scenario, k=2, samples=8, seed=4)
        assert [s.name for s in first] == [s.name for s in second]
        assert len({s.name for s in first}) == len(first)
        other_seed = sampled_k_link_failures(
            ring8_scenario, k=2, samples=8, seed=5
        )
        assert [s.name for s in first] != [s.name for s in other_seed]
        assert all(len(s.change.edits) == 2 for s in first)

    def test_acl_block_sweep_shape(self, ring8_scenario):
        batch = acl_block_sweep(ring8_scenario)
        subnets = ring8_scenario.fabric.all_host_subnets()
        routers = ring8_scenario.topology.num_routers()
        assert len(batch) == routers * len(subnets)
        capped = acl_block_sweep(ring8_scenario, max_scenarios=3)
        assert len(capped) == 3

    def test_bgp_policy_sweep_skips_current_pref(self, internet2_scenario):
        batch = bgp_policy_sweep(internet2_scenario, local_prefs=(100, 300))
        assert batch
        # Clauses already at pref 100 only get the 300 candidate.
        for scenario in batch:
            assert scenario.kind == "bgp-policy"
            assert "->" in scenario.name

    def test_scenarios_pickle(self, ring8_scenario):
        batch = all_single_link_failures(ring8_scenario)
        assert pickle.loads(pickle.dumps(batch))[0].name == batch[0].name


class TestCampaignRunner:
    @pytest.fixture(scope="class")
    def ring6(self):
        return ring_ospf(6)

    def test_serial_outcomes(self, ring6):
        batch = all_single_link_failures(ring6)
        runner = CampaignRunner(ring6.snapshot.clone(), label="ring6")
        report = runner.run(batch, jobs=1)
        assert len(report) == len(batch)
        assert [o.name for o in report.outcomes] == [s.name for s in batch]
        assert all(o.ok for o in report.outcomes)
        # A ring survives any single link failure by rerouting, so
        # every scenario must churn FIBs.
        assert all(o.fib_changes > 0 for o in report.outcomes)

    def test_parallel_matches_serial(self, ring6):
        batch = all_single_link_failures(ring6)
        runner = CampaignRunner(ring6.snapshot.clone(), label="ring6")
        serial = runner.run(batch, jobs=1)
        parallel = runner.run(batch, jobs=2)
        assert parallel.backend == "multiprocessing"
        assert [o.name for o in parallel.outcomes] == [
            o.name for o in serial.outcomes
        ]
        assert parallel.signatures() == serial.signatures()

    def test_invalid_jobs_falls_back_to_serial(self, ring6):
        """jobs=0 or negative is a config mistake, not a crash."""
        batch = all_single_link_failures(ring6)
        runner = CampaignRunner(ring6.snapshot.clone(), label="ring6")
        reference = runner.run(batch, jobs=1)
        for bad_jobs in (0, -3):
            with pytest.warns(RuntimeWarning, match="falling back"):
                report = runner.run(batch, jobs=bad_jobs)
            assert report.backend == "serial"
            assert report.jobs == 1
            assert report.signatures() == reference.signatures()

    def test_runner_reusable_after_campaign(self, ring6):
        """Campaigns must not advance the base state."""
        batch = all_single_link_failures(ring6)
        runner = CampaignRunner(ring6.snapshot.clone())
        first = runner.run(batch)
        second = runner.run(batch)
        assert first.signatures() == second.signatures()

    def test_base_pickled_once_across_parallel_runs(self, ring6):
        """The pickled base payload is hoisted: scenarios (and runs)
        share one converged base, so the runner pickles it exactly
        once until the base actually changes."""
        batch = all_single_link_failures(ring6)[:2]
        runner = CampaignRunner(ring6.snapshot.clone(), label="ring6")
        assert runner.pickle_count == 0
        first = runner.run(batch, jobs=2)
        second = runner.run(batch, jobs=2)
        assert runner.pickle_count == 1
        assert second.signatures() == first.signatures()
        # Serial runs never pickle at all.
        runner.run(batch, jobs=1)
        assert runner.pickle_count == 1

    def test_pickle_cache_invalidated_by_committed_change(self, ring6):
        batch = all_single_link_failures(ring6)[:2]
        runner = CampaignRunner(ring6.snapshot.clone(), label="ring6")
        runner.run(batch, jobs=2)
        assert runner.pickle_count == 1
        # Committing on the shared base moves `generation`; the stale
        # payload must not be reused.
        runner.analyzer.analyze(batch[0].change)
        rerun = runner.run([batch[1]] * 2, jobs=2)
        assert runner.pickle_count == 2
        assert len(rerun) == 2
        # What-if evaluation inside campaigns rolls back and must NOT
        # invalidate the cache.
        runner.run([batch[1]] * 2, jobs=2)
        assert runner.pickle_count == 2

    def test_k_link_scenarios_evaluate_batched(self, ring6):
        """k-link scenarios carry per-link changes and the runner
        batches them — outcomes equal the combined-change evaluation."""
        from repro.core.analyzer import DifferentialNetworkAnalyzer

        batch = sampled_k_link_failures(ring6, k=2, samples=4, seed=9)
        assert all(len(s.changes) == 2 for s in batch)
        assert all(len(s.batch()) == 2 for s in batch)
        runner = CampaignRunner(ring6.snapshot.clone())
        report = runner.run(batch)
        analyzer = DifferentialNetworkAnalyzer(ring6.snapshot.clone())
        for scenario, outcome in zip(batch, report.outcomes):
            combined = analyzer.what_if(scenario.change)
            assert outcome.signature == combined.behavior_signature()

    def test_invariant_violations_flagged_and_ranked(self, ring6):
        # Failing both links of r0 isolates it: reachability to r0's
        # host subnet must be reported violated, and the partition must
        # outrank single-link reroutes.
        subnet = ring6.fabric.host_subnets["r0"][0]
        invariants = [
            LoopFreedom(),
            ReachabilityInvariant(source="r3", owner="r0", prefix=subnet),
        ]
        batch = all_single_link_failures(ring6)
        batch.append(
            WhatIfScenario(
                name="isolate r0",
                change=Change.of(
                    LinkDown("r0", "r1"),
                    LinkDown("r0", "r5"),
                    label="isolate r0",
                ),
                kind="partition",
            )
        )
        runner = CampaignRunner(ring6.snapshot.clone(), invariants=invariants)
        report = runner.run(batch)
        violating = report.violating()
        assert [o.name for o in violating] == ["isolate r0"]
        assert violating[0].num_violations() >= 1
        assert report.ranked()[0].name == "isolate r0"

    def test_failed_scenarios_do_not_poison_the_batch(self, ring6):
        from repro.core.change import ShutdownInterface

        batch = [
            # ChangeError path: no link between these routers.
            WhatIfScenario(
                name="bogus",
                change=Change.of(LinkDown("r0", "nope"), label="bogus"),
            ),
            # TopologyError path: the router itself does not exist.
            WhatIfScenario(
                name="ghost",
                change=Change.of(
                    ShutdownInterface("no_such", "eth0"), label="ghost"
                ),
            ),
            *all_single_link_failures(ring6),
        ]
        runner = CampaignRunner(ring6.snapshot.clone())
        report = runner.run(batch)
        assert {o.name for o in report.failed()} == {"bogus", "ghost"}
        good = [o for o in report.outcomes if o.ok]
        assert len(good) == len(batch) - 2
        # Bad scenarios must not abort the worker pool either.
        parallel = runner.run(batch, jobs=2)
        assert {o.name for o in parallel.failed()} == {"bogus", "ghost"}
        # The failed applies were rolled back: rerunning the good ones
        # gives identical behaviour.
        again = runner.run(batch[2:])
        assert again.signatures() == [o.signature for o in good]

    def test_monitored_prefixes_scope_blast_radius(self, ring6):
        """With host subnets monitored, a tolerant ring's single-link
        failures rank as pure reroutes: the failed link's own /31
        vanishing is not an outage."""
        batch = all_single_link_failures(ring6)
        monitored = ring6.fabric.all_host_subnets()
        runner = CampaignRunner(ring6.snapshot.clone(), monitored=monitored)
        report = runner.run(batch)
        for outcome in report.outcomes:
            assert outcome.monitored_pairs_lost == 0
            assert outcome.blast_radius() == 0
            assert outcome.pairs_lost > 0  # the /31 churn is still visible
            assert outcome.fib_changes > 0
        assert len(report.harmless()) == 0  # reroutes are not "harmless"
        assert "reroute-only: 6" in report.summary()
        # Parallel backend computes the same monitored counts.
        parallel = runner.run(batch, jobs=2)
        assert [
            (o.monitored_pairs_lost, o.monitored_pairs_gained)
            for o in parallel.outcomes
        ] == [
            (o.monitored_pairs_lost, o.monitored_pairs_gained)
            for o in report.outcomes
        ]

    def test_outcome_blast_radius_and_summary(self, ring6):
        batch = all_single_link_failures(ring6)[:3]
        runner = CampaignRunner(ring6.snapshot.clone(), label="ring6")
        report = runner.run(batch)
        outcome = report.outcomes[0]
        assert outcome.blast_radius() == (
            outcome.pairs_lost + outcome.pairs_gained
        )
        text = report.summary(top=2)
        assert "3 scenarios" in text
        assert "serial" in text

    def test_from_analyzer_shares_warm_state(self, ring6):
        from repro.core.analyzer import DifferentialNetworkAnalyzer

        analyzer = DifferentialNetworkAnalyzer(ring6.snapshot.clone())
        runner = CampaignRunner.from_analyzer(analyzer, label="warm")
        assert runner.analyzer is analyzer
        report = runner.run(all_single_link_failures(ring6)[:2])
        assert all(o.ok for o in report.outcomes)


class TestCampaignCli:
    def test_campaign_command_runs(self, capsys):
        from repro.cli import main

        code = main(
            [
                "campaign",
                "links",
                "--scenario",
                "ring",
                "--size",
                "5",
                "--jobs",
                "2",
                "--top",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "5 links scenarios" in out
        assert "multiprocessing" in out

    def test_demo_seed_reproducible(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.snapshot import Snapshot, serialize_topology

        for directory in ("a", "b"):
            code = main(
                [
                    "demo",
                    str(tmp_path / directory),
                    "--topology",
                    "random",
                    "--size",
                    "8",
                    "--seed",
                    "7",
                ]
            )
            assert code == 0
        capsys.readouterr()
        first = Snapshot.load(str(tmp_path / "a"))
        second = Snapshot.load(str(tmp_path / "b"))
        assert serialize_topology(first.topology) == serialize_topology(
            second.topology
        )


class TestCampaignProvenanceMerge:
    """Serial vs multiprocessing equality of the merged event log.

    Per-scenario event-log slices travel back with the outcomes and
    the parent merges them in enumeration order, so ``jobs=N`` must be
    invisible in the provenance artifacts too — byte-identical JSONL.
    """

    @pytest.fixture(scope="class")
    def ring6(self):
        return ring_ospf(6)

    def test_event_log_merge_serial_equals_parallel(self, ring6):
        batch = all_single_link_failures(ring6)
        runner = CampaignRunner(
            ring6.snapshot.clone(), label="ring6", provenance=True
        )
        serial = runner.run(batch, jobs=1)
        parallel = runner.run(batch, jobs=2)
        assert len(serial.events) > 0
        assert serial.events.to_jsonl() == parallel.events.to_jsonl()
        assert [outcome.causes for outcome in serial.outcomes] == [
            outcome.causes for outcome in parallel.outcomes
        ]
        serial_doc = serial.to_dict()
        parallel_doc = parallel.to_dict()
        for document in (serial_doc, parallel_doc):
            document.pop("wall_time")
            document.pop("backend")
            document.pop("jobs")
            for outcome in document["outcomes"]:
                outcome.pop("duration")
        assert serial_doc == parallel_doc

    def test_invariant_causes_survive_the_pool(self, ring6):
        subnet = ring6.fabric.host_subnets["r0"][0]
        invariants = [
            LoopFreedom(),
            ReachabilityInvariant(source="r3", owner="r0", prefix=subnet),
        ]
        batch = all_single_link_failures(ring6)
        batch.append(
            WhatIfScenario(
                name="isolate r0",
                change=Change.of(
                    LinkDown("r0", "r1"),
                    LinkDown("r0", "r5"),
                    label="isolate r0",
                ),
                kind="partition",
            )
        )
        runner = CampaignRunner(
            ring6.snapshot.clone(),
            invariants=invariants,
            provenance=True,
        )
        serial = runner.run(batch, jobs=1)
        parallel = runner.run(batch, jobs=2)
        attributed = 0
        for left, right in zip(serial.outcomes, parallel.outcomes):
            assert left.causes == right.causes
            if left.violations:
                assert left.causes is not None
                assert left.causes["violations"]
                for violation in left.causes["violations"]:
                    assert violation["edits"]
                    attributed += 1
        assert attributed >= 1  # the partition scenario violates
