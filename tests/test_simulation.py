"""End-to-end full simulation: RIBs, FIBs, IGP adapter."""

from repro.controlplane.simulation import IgpAdapter, simulate
from repro.controlplane.rib import NextHop, Route
from repro.net.addr import IPv4Address, Prefix
from repro.workloads.scenarios import (
    fat_tree_ospf,
    internet2_bgp,
    line_static,
    ring_ospf,
)


class TestStaticChain:
    def test_fibs_forward_along_chain(self):
        scenario = line_static(4)
        state = simulate(scenario.snapshot)
        target = scenario.fabric.host_subnets["r3"][0]
        for index, router in enumerate(("r0", "r1", "r2")):
            entry = state.fibs[router].lookup(target.first + 1)
            assert entry is not None
            assert entry.forwards_to() == {f"r{index + 1}"}

    def test_owner_delivers(self):
        scenario = line_static(4)
        state = simulate(scenario.snapshot)
        target = scenario.fabric.host_subnets["r3"][0]
        entry = state.fibs["r3"].lookup(target.first + 1)
        assert any(nh.neighbor is None for nh in entry.next_hops)


class TestOspfFabrics:
    def test_ring_uses_shortest_direction(self):
        scenario = ring_ospf(6)
        state = simulate(scenario.snapshot)
        target = scenario.fabric.host_subnets["r1"][0]
        entry = state.fibs["r0"].lookup(target.first + 1)
        assert entry.forwards_to() == {"r1"}

    def test_fat_tree_ecmp_in_fib(self):
        scenario = fat_tree_ospf(4)
        state = simulate(scenario.snapshot)
        target = scenario.fabric.host_subnets["edge1_0"][0]
        entry = state.fibs["edge0_0"].lookup(target.first + 1)
        assert len(entry.forwards_to()) == 2  # both aggs

    def test_loopbacks_reachable(self):
        scenario = ring_ospf(4)
        state = simulate(scenario.snapshot)
        r2_loopback = scenario.topology.router("r2").interface("lo0").address
        entry = state.fibs["r0"].lookup(r2_loopback.value)
        assert entry is not None and entry.forwards_to()


class TestBgpIntegration:
    def test_bgp_routes_in_fib_with_resolved_hops(self):
        scenario = internet2_bgp()
        state = simulate(scenario.snapshot)
        prefix = scenario.fabric.host_subnets["cust_chic0"][0]
        entry = state.fibs["SEAT"].lookup(prefix.first + 1)
        assert entry is not None and entry.protocol == "bgp"
        # Hops must be physical (interface + neighbor), not loopbacks.
        for hop in entry.next_hops:
            assert hop.interface and hop.neighbor

    def test_customer_default_path(self):
        scenario = internet2_bgp()
        state = simulate(scenario.snapshot)
        other = scenario.fabric.host_subnets["cust_wash0"][0]
        entry = state.fibs["cust_seat0"].lookup(other.first + 1)
        assert entry is not None
        assert entry.forwards_to() == {"SEAT"}


class TestIgpAdapter:
    def test_cost_and_resolution(self):
        adapter = IgpAdapter()
        prefix = Prefix("10.0.0.0/24")
        route = Route(
            prefix=prefix,
            protocol="ospf",
            admin_distance=110,
            metric=30,
            next_hops=frozenset({NextHop(interface="eth0", neighbor="b")}),
        )
        adapter.set_router_routes("a", {prefix: route})
        address = IPv4Address(prefix.first + 5)
        assert adapter.cost_to("a", address) == 30.0
        assert adapter.covering_route("a", address) is route

    def test_uncovered_address_infinite(self):
        adapter = IgpAdapter()
        adapter.set_router_routes("a", {})
        assert adapter.cost_to("a", IPv4Address("10.0.0.1")) == float("inf")

    def test_drop_route_infinite(self):
        adapter = IgpAdapter()
        prefix = Prefix("10.0.0.0/24")
        route = Route(
            prefix=prefix,
            protocol="static",
            admin_distance=1,
            metric=0,
            next_hops=frozenset({NextHop(drop=True)}),
        )
        adapter.set_router_routes("a", {prefix: route})
        assert adapter.cost_to("a", IPv4Address(prefix.first)) == float("inf")


class TestStateShape:
    def test_counts(self):
        scenario = internet2_bgp()
        state = simulate(scenario.snapshot, precompute_reachability=True)
        assert len(state.ribs) == scenario.topology.num_routers()
        assert len(state.fibs) == scenario.topology.num_routers()
        assert state.dataplane.atom_table.num_atoms() == len(
            state.reachability.cached_atoms()
        )
        stats = state.dataplane.stats()
        assert stats["fib_entries"] > 0 and stats["atoms"] > 1
