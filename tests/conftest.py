"""Shared fixtures: configured scenarios, cached per session.

Scenario builders are deterministic, but analyzers mutate their
snapshots — fixtures that need isolation clone before use.
"""

from __future__ import annotations

import pytest

from repro.workloads.scenarios import (
    fat_tree_ospf,
    internet2_bgp,
    line_static,
    random_ospf,
    ring_ospf,
)


@pytest.fixture(scope="session")
def fat_tree_k4_scenario():
    return fat_tree_ospf(4)


@pytest.fixture(scope="session")
def internet2_scenario():
    return internet2_bgp()


@pytest.fixture(scope="session")
def ring8_scenario():
    return ring_ospf(8)


@pytest.fixture(scope="session")
def line5_scenario():
    return line_static(5)


@pytest.fixture(scope="session")
def random12_scenario():
    return random_ospf(12, 10, seed=3)


@pytest.fixture()
def fresh_fat_tree_k4(fat_tree_k4_scenario):
    """An isolated copy safe to mutate."""
    import copy

    scenario = copy.copy(fat_tree_k4_scenario)
    scenario.snapshot = fat_tree_k4_scenario.snapshot.clone()
    return scenario
