"""The legacy call paths survive as warning, delegating shims.

Two guarantees:

1. *Importing* the old names is silent — a codebase running with
   ``-W error::DeprecationWarning`` only breaks where it *calls* a
   deprecated function, never at import time.
2. Calling a shim warns exactly once per call site and returns the
   same result as the supported path.
"""

import os
import subprocess
import sys
import warnings

import pytest

from repro.api import Network
from repro.controlplane.simulation import simulate
from repro.core.change import Change, LinkDown
from repro.core.invariants import LoopFreedom, check_invariants
from repro.query.paths import forwarding_paths, path_diff
from repro.query.trace import trace_packet
from repro.workloads.scenarios import ring_ospf

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestImportsStaySilent:
    def test_old_imports_clean_under_error_filter(self):
        """`-W error::DeprecationWarning` must not break imports."""
        code = (
            "import repro\n"
            "import repro.query\n"
            "from repro.query.trace import trace_packet\n"
            "from repro.query.paths import forwarding_paths, path_diff\n"
            "from repro.core.invariants import check_invariants\n"
            "from repro.campaign import CampaignRunner\n"
            "assert callable(trace_packet)\n"
            "assert callable(check_invariants)\n"
            "assert callable(repro.trace_packet)\n"
            "assert callable(repro.path_diff)\n"
        )
        result = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={
                **os.environ,
                "PYTHONPATH": os.path.join(REPO_ROOT, "src"),
            },
        )
        assert result.returncode == 0, result.stderr


@pytest.fixture(scope="module")
def ring6():
    scenario = ring_ospf(6)
    return scenario, simulate(scenario.snapshot, precompute_reachability=True)


class TestShimsWarnAndDelegate:
    def test_trace_packet(self, ring6):
        scenario, state = ring6
        target = scenario.fabric.host_subnets["r3"][0]
        with pytest.deprecated_call(match="Network.trace"):
            trace = trace_packet(state, "r0", {"dst": target.first + 1})
        modern = scenario.network().trace("r0", target.first + 1)
        assert trace.render() == modern.render()

    def test_forwarding_paths(self, ring6):
        scenario, state = ring6
        target = scenario.fabric.host_subnets["r3"][0]
        with pytest.deprecated_call(match="Network.paths"):
            edges, delivered = forwarding_paths(state, "r0", target.first + 1)
        modern = scenario.network().paths("r0", target.first + 1)
        assert edges == modern.edges and delivered == modern.delivered

    def test_path_diff(self, ring6):
        scenario, state = ring6
        target = scenario.fabric.host_subnets["r1"][0]
        changed = scenario.snapshot.clone()
        LinkDown("r0", "r1").apply(changed)
        after = simulate(changed)
        with pytest.deprecated_call(match="Network.path_diff"):
            legacy = path_diff(state, after, "r0", target.first + 1)
        modern = Network.from_snapshot(scenario.snapshot).path_diff(
            Change.of(LinkDown("r0", "r1")), "r0", target.first + 1
        )
        assert legacy == modern

    def test_check_invariants(self, ring6):
        scenario, _state = ring6
        net = scenario.network()
        report = net.preview(Change.of(LinkDown("r0", "r1")))
        with pytest.deprecated_call(match="Network.check"):
            legacy = check_invariants(report, [LoopFreedom()])
        assert legacy == net.check_by_invariant(report, [LoopFreedom()])

    def test_supported_paths_do_not_warn(self, ring6):
        """The facade must not route through its own shims."""
        scenario, _state = ring6
        net = scenario.network()
        target = scenario.fabric.host_subnets["r3"][0]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            net.trace("r0", target.first + 1)
            net.paths("r0", target.first + 1)
            report = net.preview(Change.of(LinkDown("r0", "r1")))
            net.check(report, ["loop-freedom"])
            net.campaign([])
