#!/usr/bin/env python3
"""Quickstart: differential analysis of one link failure.

Builds a small OSPF ring, wraps it in the `repro.api.Network` session
facade (one full convergence), then asks: *what exactly happens if the
r0--r1 link fails?* — first as a non-committing `preview`, then as a
committed `apply`, with the Batfish-style snapshot-diff baseline run
alongside to show the agreement and the speedup.

Run:  python examples/quickstart.py
"""

from repro.api import ChangeSet, Network
from repro.core.snapshot_diff import SnapshotDiff


def main() -> None:
    net = Network.generate("ring", size=8)
    print(f"scenario: {net.summary()}")

    print("\nconverging the network once (the session's warm state)...")
    atoms = net.state.dataplane.atom_table.num_atoms()
    print(f"converged: {atoms} packet-equivalence atoms")

    failure = ChangeSet("fail r0--r1").link_down("r0", "r1")
    print(f"\npreviewing change: {failure.describe()}")

    preview = net.preview(failure)           # fork-backed, non-committing
    print("\n" + preview.summary())

    # Committing gives the identical report; the baseline agrees.
    baseline = SnapshotDiff(net.snapshot.clone())
    reference = baseline.analyze(failure.build())
    report = net.apply(failure)

    agree = (
        report.behavior_signature() == reference.behavior_signature()
        and report.behavior_signature() == preview.behavior_signature()
    )
    speedup = reference.timings["total"] / report.timings["total"]
    print(f"\npreview, commit, and snapshot-diff baseline agree: {agree}")
    print(
        f"differential: {report.timings['total'] * 1e3:.1f} ms, "
        f"baseline: {reference.timings['total'] * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )

    # Show a concrete rerouted FIB entry.
    for router, changes in sorted(report.fib_changes.items()):
        for prefix, (before, after) in sorted(changes.items(), key=lambda kv: kv[0]):
            if before is not None and after is not None:
                print(f"\nexample reroute on {router}:")
                print(f"  before: {before}")
                print(f"  after:  {after}")
                break
        else:
            continue
        break

    # Every outcome serializes to versioned JSON, byte-stably.
    document = report.to_dict()
    print(f"\nreport serializes as schema v{document['schema_version']} "
          f"({document['kind']})")

    print("\nrecovering the link...")
    recovery = net.apply(ChangeSet("recover").link_up("r0", "r1"))
    print(f"recovery impact mirrors the failure: {not recovery.is_empty()}")


if __name__ == "__main__":
    main()
