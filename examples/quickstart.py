#!/usr/bin/env python3
"""Quickstart: differential analysis of one link failure.

Builds a small OSPF ring, stands up the differential analyzer (one
full convergence), then asks: *what exactly happens if the r0--r1 link
fails?* — and gets the answer incrementally, with the Batfish-style
snapshot-diff baseline run alongside to show the agreement and the
speedup.

Run:  python examples/quickstart.py
"""

from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, LinkDown, LinkUp
from repro.core.snapshot_diff import SnapshotDiff
from repro.workloads.scenarios import ring_ospf


def main() -> None:
    scenario = ring_ospf(8)
    print(f"scenario: {scenario.name} — {scenario.snapshot.summary()}")

    print("\nconverging the network once (the analyzer's warm state)...")
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
    atoms = analyzer.state.dataplane.atom_table.num_atoms()
    print(f"converged: {atoms} packet-equivalence atoms")

    change = Change.of(LinkDown("r0", "r1"), label="fail r0--r1")
    print(f"\nanalyzing change: {change.describe()}")

    baseline = SnapshotDiff(analyzer.snapshot.clone())
    reference = baseline.analyze(change)
    report = analyzer.analyze(change)

    print("\n" + report.summary())

    agree = report.behavior_signature() == reference.behavior_signature()
    speedup = reference.timings["total"] / report.timings["total"]
    print(f"\nsnapshot-diff baseline agrees: {agree}")
    print(
        f"differential: {report.timings['total'] * 1e3:.1f} ms, "
        f"baseline: {reference.timings['total'] * 1e3:.1f} ms "
        f"({speedup:.1f}x)"
    )

    # Show a concrete rerouted FIB entry.
    for router, changes in sorted(report.fib_changes.items()):
        for prefix, (before, after) in sorted(changes.items(), key=lambda kv: kv[0]):
            if before is not None and after is not None:
                print(f"\nexample reroute on {router}:")
                print(f"  before: {before}")
                print(f"  after:  {after}")
                break
        else:
            continue
        break

    print("\nrecovering the link...")
    recovery = analyzer.analyze(Change.of(LinkUp("r0", "r1"), label="recover"))
    print(f"recovery impact mirrors the failure: {not recovery.is_empty()}")


if __name__ == "__main__":
    main()
