#!/usr/bin/env python3
"""BGP policy what-if on the Internet2 WAN.

The dual-homed customer ``cust_dual`` enters via SEAT (local-pref 200,
primary) and NEWY (local-pref 100, backup).  The operator wants to
drain SEAT for maintenance by flipping the preferences, and asks:
*which traffic moves, and does anything break?*  `Network.preview`
answers per (router, prefix) without committing anything; the drain is
then committed with `Network.apply` and contrasted with an actual
outage, all against one warm converged state.

Run:  python examples/bgp_policy_what_if.py
"""

from repro.api import Network
from repro.core.invariants import ReachabilityInvariant
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import internet2_bgp


def main() -> None:
    net = internet2_bgp().network()
    scenario = net.scenario
    generator = ChangeGenerator(scenario, seed=7)

    prefixes = scenario.fabric.host_subnets["cust_dual"]
    print(f"dual-homed customer prefixes: {[str(p) for p in prefixes]}")
    solution = net.state.bgp_solutions[prefixes[0]]
    print(f"current best at CHIC: local-pref "
          f"{solution.best['CHIC'].bundle.local_pref} "
          f"(via {solution.best['CHIC'].from_peer})")

    # The drain must not strand anyone: every PoP keeps reaching the
    # customer.
    invariants = [
        ReachabilityInvariant(pop, "cust_dual", prefixes[0])
        for pop in ("SEAT", "CHIC", "WASH", "HOUS")
    ]

    flip = generator.dual_homed_pref_flip(primary_pref=100, backup_pref=200)
    print(f"\nwhat-if (non-committing preview): {flip.describe()}")
    report = net.preview(flip)

    print(f"\n{report.summary()}")
    moved = {
        router: [str(prefix) for prefix in changes]
        for router, changes in report.rib_changes.items()
    }
    print("\ntraffic shifts (router: prefixes re-pathed):")
    for router in sorted(moved):
        print(f"  {router}: {', '.join(moved[router])}")

    # How does CHIC's forwarding to the customer actually move?
    diff = net.path_diff(flip, "CHIC", prefixes[0].first + 1)
    print(f"\nCHIC -> cust_dual path diff: {diff}")

    broken = [
        violation
        for violation in net.check(report, invariants)
        if not violation.repaired
    ]
    print(f"\nreachability invariants broken by the drain: {len(broken)}")
    assert not broken, "drain would strand traffic!"
    print("drain is safe: all PoPs still reach cust_dual via NEWY. "
          "committing it.")
    net.apply(flip)

    # Contrast with an actual outage: the customer withdraws a prefix.
    print(f"\nnow the outage case: cust_dual withdraws {prefixes[0]}")
    report = net.apply(
        net.changeset(f"cust_dual withdraws {prefixes[0]}")
        .withdraw("cust_dual", prefixes[0])
    )
    broken = [
        violation
        for violation in net.check(report, invariants)
        if not violation.repaired
    ]
    print(f"invariants broken: {len(broken)}")
    for violation in broken[:4]:
        print(f"  {violation}")


if __name__ == "__main__":
    main()
