#!/usr/bin/env python3
"""BGP policy what-if on the Internet2 WAN.

The dual-homed customer ``cust_dual`` enters via SEAT (local-pref 200,
primary) and NEWY (local-pref 100, backup).  The operator wants to
drain SEAT for maintenance by flipping the preferences, and asks:
*which traffic moves, and does anything break?*  The differential
analyzer answers per (router, prefix): exactly which FIB entries shift
from the SEAT-facing paths to the NEWY-facing ones.

Run:  python examples/bgp_policy_what_if.py
"""

from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, WithdrawPrefix
from repro.core.invariants import ReachabilityInvariant, check_invariants
from repro.workloads.changes import ChangeGenerator
from repro.workloads.scenarios import internet2_bgp


def main() -> None:
    scenario = internet2_bgp()
    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
    generator = ChangeGenerator(scenario, seed=7)

    prefixes = scenario.fabric.host_subnets["cust_dual"]
    print(f"dual-homed customer prefixes: {[str(p) for p in prefixes]}")
    solution = analyzer.state.bgp_solutions[prefixes[0]]
    print(f"current best at CHIC: local-pref "
          f"{solution.best['CHIC'].bundle.local_pref} "
          f"(via {solution.best['CHIC'].from_peer})")

    flip = generator.dual_homed_pref_flip(primary_pref=100, backup_pref=200)
    print(f"\nwhat-if: {flip.describe()}")
    report = analyzer.analyze(flip)

    print(f"\n{report.summary()}")
    moved = {
        router: [str(prefix) for prefix in changes]
        for router, changes in report.rib_changes.items()
    }
    print("\ntraffic shifts (router: prefixes re-pathed):")
    for router in sorted(moved):
        print(f"  {router}: {', '.join(moved[router])}")

    # The drain must not strand anyone: every PoP keeps reaching the
    # customer.
    invariants = [
        ReachabilityInvariant(pop, "cust_dual", prefixes[0])
        for pop in ("SEAT", "CHIC", "WASH", "HOUS")
    ]
    results = check_invariants(report, invariants)
    broken = [
        violation
        for violations in results.values()
        for violation in violations
        if not violation.repaired
    ]
    print(f"\nreachability invariants broken by the drain: {len(broken)}")
    assert not broken, "drain would strand traffic!"
    print("drain is safe: all PoPs still reach cust_dual via NEWY.")

    # Contrast with an actual outage: the customer withdraws a prefix.
    withdraw = Change.of(
        WithdrawPrefix("cust_dual", prefixes[0]),
        label=f"cust_dual withdraws {prefixes[0]}",
    )
    print(f"\nnow the outage case: {withdraw.describe()}")
    report = analyzer.analyze(withdraw)
    results = check_invariants(report, invariants)
    broken = [
        violation
        for violations in results.values()
        for violation in violations
        if not violation.repaired
    ]
    print(f"invariants broken: {len(broken)}")
    for violation in broken[:4]:
        print(f"  {violation}")


if __name__ == "__main__":
    main()
