#!/usr/bin/env python3
"""Failure audit: blast radius of every link in a fat-tree fabric.

The motivating workload of incremental verification: sweep *all* link
failures in a data-center fabric and classify each one's impact —
which (source, destination) pairs lose connectivity, which merely
reroute.  With snapshot-diffing this costs one full simulation per
link; the campaign engine evaluates each failure as a *fork* of one
converged base state (milliseconds per scenario, no undo pairing) and
can spread the batch over worker processes.

Run:  python examples/link_failure_audit.py [k] [jobs]
"""

import sys
import time

from repro.campaign import CampaignRunner, all_single_link_failures
from repro.core.invariants import BlackholeFreedom, LoopFreedom
from repro.workloads.scenarios import fat_tree_ospf


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    scenario = fat_tree_ospf(k)
    print(f"fabric: fat-tree k={k}, {scenario.topology.num_routers()} routers, "
          f"{scenario.topology.num_links()} links")

    batch = all_single_link_failures(scenario)
    host_subnets = scenario.fabric.all_host_subnets()
    invariants = [
        LoopFreedom(),
        # The failed link's own /31 always blackholes; only host
        # subnets count as outages.
        BlackholeFreedom(monitored=host_subnets),
    ]

    print(f"\nauditing {len(batch)} single-link failures "
          f"(jobs={jobs})...\n")
    runner = CampaignRunner(
        scenario.snapshot,
        invariants=invariants,
        label=f"fat_tree k={k}",
        # Count only host-subnet pair churn as impact: the failed
        # link's own /31 always disappears and is not an outage.
        monitored=host_subnets,
    )
    started = time.perf_counter()
    report = runner.run(batch, jobs=jobs)
    elapsed = time.perf_counter() - started

    print(f"audit finished in {elapsed:.2f}s "
          f"({elapsed / max(len(batch), 1) * 1e3:.1f} ms per failure, "
          f"state forked and rolled back per scenario)")

    # Losses that matter are losses of *host* traffic; the runner's
    # monitored list restricts blast radius to host-subnet churn, so
    # the failed link's own /31 pairs never count as damage.
    lossy = [o for o in report.outcomes if o.ok and o.monitored_pairs_lost]
    rerouted_only = [
        outcome
        for outcome in report.outcomes
        if outcome.ok and not outcome.monitored_pairs_lost and outcome.fib_changes
    ]
    print(f"\nlinks surviving with reroute only: {len(rerouted_only)}")
    print(f"links causing host-visible damage:  {len(lossy)}")
    for outcome in sorted(lossy, key=lambda o: -o.blast_radius())[:10]:
        print(f"  {outcome.name}: {outcome.monitored_pairs_lost} host pairs "
              f"lost, {outcome.num_violations()} violations")

    if not lossy:
        print("\nfabric is single-link-failure tolerant for transit "
              "traffic (host uplinks excluded from the sweep would "
              "still be single points of attachment).")


if __name__ == "__main__":
    main()
