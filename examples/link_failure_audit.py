#!/usr/bin/env python3
"""Failure audit: blast radius of every link in a fat-tree fabric.

The motivating workload of incremental verification: sweep *all* link
failures in a data-center fabric and classify each one's impact —
which (source, destination) pairs lose connectivity, which merely
reroute.  With snapshot-diffing this costs one full simulation per
link; differentially each failure is analyzed in milliseconds and the
state is restored by analyzing the recovery.

Run:  python examples/link_failure_audit.py [k]
"""

import sys
import time

from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import Change, LinkDown, LinkUp
from repro.workloads.scenarios import fat_tree_ospf


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    scenario = fat_tree_ospf(k)
    print(f"fabric: fat-tree k={k}, {scenario.topology.num_routers()} routers, "
          f"{scenario.topology.num_links()} links")

    analyzer = DifferentialNetworkAnalyzer(scenario.snapshot)
    links = list(scenario.topology.links())

    # Losses that matter are losses of *host* traffic; the failed
    # link's own /31 always disappears and is not an outage.
    host_spans = [
        subnet.interval() for subnet in scenario.fabric.all_host_subnets()
    ]

    def host_pairs_lost(report) -> int:
        lost = 0
        for segment in report.reach_segments:
            if any(segment.lo < hi and lo < segment.hi for lo, hi in host_spans):
                lost += len(segment.removed)
        return lost

    print(f"\nauditing {len(links)} single-link failures...\n")
    started = time.perf_counter()
    rerouted_only: list[str] = []
    lossy: list[tuple[str, int]] = []
    for link in links:
        (r1, i1), (r2, i2) = link.side_a, link.side_b
        report = analyzer.analyze(
            Change.of(LinkDown(r1, r2, i1, i2), label=f"fail {link}")
        )
        lost_pairs = host_pairs_lost(report)
        if lost_pairs:
            lossy.append((str(link), lost_pairs))
        elif report.num_fib_changes():
            rerouted_only.append(str(link))
        analyzer.analyze(Change.of(LinkUp(r1, r2, i1, i2), label="recover"))
    elapsed = time.perf_counter() - started

    print(f"audit finished in {elapsed:.2f}s "
          f"({elapsed / max(len(links), 1) * 1e3:.1f} ms per failure, "
          f"including recovery analysis)")
    print(f"\nlinks surviving with reroute only: {len(rerouted_only)}")
    print(f"links causing reachability loss:   {len(lossy)}")
    for name, pairs in sorted(lossy, key=lambda item: -item[1])[:10]:
        print(f"  {name}: {pairs} (src, dst-owner) pairs lost")

    if not lossy:
        print("\nfabric is single-link-failure tolerant for transit "
              "traffic (host uplinks excluded from the sweep would "
              "still be single points of attachment).")


if __name__ == "__main__":
    main()
