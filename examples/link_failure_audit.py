#!/usr/bin/env python3
"""Failure audit: blast radius of every link in a fat-tree fabric.

The motivating workload of incremental verification: sweep *all* link
failures in a data-center fabric and classify each one's impact —
which (source, destination) pairs lose connectivity, which merely
reroute.  With snapshot-diffing this costs one full simulation per
link; `Network.campaign` evaluates each failure as a *fork* of one
converged base state (milliseconds per scenario, no undo pairing) and
can spread the batch over worker processes.

Run:  python examples/link_failure_audit.py [k] [jobs]
"""

import sys
import time

from repro.api import Network, make_invariant
from repro.campaign import all_single_link_failures


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    net = Network.generate("fat_tree", size=k)
    scenario = net.scenario
    print(f"fabric: fat-tree k={k}, {scenario.topology.num_routers()} routers, "
          f"{scenario.topology.num_links()} links")

    batch = all_single_link_failures(scenario)
    host_subnets = scenario.fabric.all_host_subnets()
    invariants = [
        # Registry names and instances mix freely in the facade.
        "loop-freedom",
        # The failed link's own /31 always blackholes; only host
        # subnets count as outages.
        make_invariant("blackhole-freedom", monitored=host_subnets),
    ]

    print(f"\nconverging the base network once, then auditing "
          f"{len(batch)} single-link failures (jobs={jobs})...\n")
    atoms = net.state.dataplane.atom_table.num_atoms()  # pay convergence here
    print(f"converged: {atoms} packet-equivalence atoms")
    started = time.perf_counter()
    report = net.campaign(
        batch,
        jobs=jobs,
        invariants=invariants,
        label=f"fat_tree k={k}",
        # Count only host-subnet pair churn as impact: the failed
        # link's own /31 always disappears and is not an outage.
        monitored=host_subnets,
    )
    elapsed = time.perf_counter() - started

    print(f"audit finished in {elapsed:.2f}s "
          f"({elapsed / max(len(batch), 1) * 1e3:.1f} ms per failure, "
          f"state forked and rolled back per scenario)")

    # Losses that matter are losses of *host* traffic; the campaign's
    # monitored list restricts blast radius to host-subnet churn, so
    # the failed link's own /31 pairs never count as damage.
    lossy = [o for o in report.outcomes if o.ok and o.monitored_pairs_lost]
    rerouted_only = [
        outcome
        for outcome in report.outcomes
        if outcome.ok and not outcome.monitored_pairs_lost and outcome.fib_changes
    ]
    print(f"\nlinks surviving with reroute only: {len(rerouted_only)}")
    print(f"links causing host-visible damage:  {len(lossy)}")
    for outcome in sorted(lossy, key=lambda o: -o.blast_radius())[:10]:
        print(f"  {outcome.name}: {outcome.monitored_pairs_lost} host pairs "
              f"lost, {outcome.num_violations()} violations")

    if not lossy:
        print("\nfabric is single-link-failure tolerant for transit "
              "traffic (host uplinks excluded from the sweep would "
              "still be single points of attachment).")


if __name__ == "__main__":
    main()
