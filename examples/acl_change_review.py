#!/usr/bin/env python3
"""Pre-deployment ACL review against intent invariants.

An operator wants to block one host subnet on a transit router and
must prove, before deploying, that (a) the intended isolation takes
effect and (b) nothing else breaks.  The change is reviewed
differentially against a suite of invariants; a second, "fat-fingered"
variant of the change shows a violation being caught before rollout.

Topology: a 6-router static chain r0..r5; the filter goes on transit
router r2's eastbound interface, so all traffic from the west to
r3/r4/r5 provably crosses it.

Also demonstrates the on-disk snapshot workflow: the network is saved
to and reloaded from a config directory before review.

Run:  python examples/acl_change_review.py
"""

import tempfile

from repro.config.acl import AclAction, AclRule
from repro.core.analyzer import DifferentialNetworkAnalyzer
from repro.core.change import AddAclRule, BindAcl, Change, RemoveAclRule
from repro.core.invariants import (
    IsolationInvariant,
    LoopFreedom,
    ReachabilityInvariant,
    check_invariants,
)
from repro.core.snapshot import Snapshot
from repro.net.addr import Prefix
from repro.workloads.scenarios import line_static


def main() -> None:
    scenario = line_static(6)

    with tempfile.TemporaryDirectory() as directory:
        scenario.snapshot.save(directory)
        snapshot = Snapshot.load(directory)
        print(f"loaded snapshot from disk: {snapshot.summary()}")

    analyzer = DifferentialNetworkAnalyzer(snapshot)

    victim = scenario.fabric.host_subnets["r4"][0]   # to be blocked
    keep = scenario.fabric.host_subnets["r3"][0]     # must keep working
    transit, interface = "r2", "eth1"                # eastbound

    invariants = [
        IsolationInvariant("r0", "r4", victim),       # the intent
        ReachabilityInvariant("r0", "r3", keep),      # collateral guard
        LoopFreedom(),
    ]

    proposed = Change.of(
        AddAclRule(transit, "EDGE_FILTER",
                   AclRule(AclAction.PERMIT, dst=Prefix("0.0.0.0/0"))),
        AddAclRule(transit, "EDGE_FILTER",
                   AclRule(AclAction.DENY, dst=victim), position=0),
        BindAcl(transit, interface, "EDGE_FILTER", "out"),
        label=f"block {victim} out of {transit}[{interface}]",
    )
    print(f"\nreviewing proposed change:\n{proposed.describe()}")
    report = analyzer.analyze(proposed)
    print(f"\n{report.summary()}")

    results = check_invariants(report, invariants)
    print("\ninvariant verdicts:")
    for name, violations in results.items():
        for violation in violations:
            intended = "isolate" in name and violation.repaired
            print(f"  [{'intent satisfied' if intended else 'VIOLATION'}] {violation}")
    guard_broken = any(
        not v.repaired
        for name, vs in results.items()
        for v in vs
        if "reach(" in name
    )
    print(f"\ncollateral damage: {'YES' if guard_broken else 'none'} "
          "- change is safe to deploy")

    # The fat-fingered variant: deny the whole host space instead of
    # one /24.  Every westbound-to-eastbound flow dies, including the
    # guarded r0 -> r3 traffic.
    oops_rule = AclRule(AclAction.DENY, dst=Prefix("172.16.0.0/12"))
    oops = Change.of(
        AddAclRule(transit, "EDGE_FILTER", oops_rule, position=0),
        label="fat-fingered: deny the whole host space",
    )
    print(f"\nreviewing fat-fingered variant:\n{oops.describe()}")
    report = analyzer.analyze(oops)
    results = check_invariants(report, invariants)
    tripped = [
        violation
        for violations in results.values()
        for violation in violations
        if not violation.repaired
    ]
    print(f"\ninvariants tripped: {len(tripped)}")
    for violation in tripped:
        print(f"  {violation}")
    assert tripped, "the guard should have caught this"
    print("\nthe bad rule is rejected before deployment; reverting it:")
    revert = Change.of(
        RemoveAclRule(transit, "EDGE_FILTER", oops_rule), label="revert"
    )
    report = analyzer.analyze(revert)
    repaired = sum(
        1
        for violations in check_invariants(report, invariants).values()
        for violation in violations
        if violation.repaired
    )
    print(f"revert restores {repaired} invariant(s).")


if __name__ == "__main__":
    main()
