#!/usr/bin/env python3
"""Pre-deployment ACL review against intent invariants.

An operator wants to block one host subnet on a transit router and
must prove, before deploying, that (a) the intended isolation takes
effect and (b) nothing else breaks.  The change is built with the
fluent `ChangeSet` API and *previewed* against a suite of invariants —
nothing commits until the review passes; a second, "fat-fingered"
variant of the change shows a violation being caught before rollout.

Topology: a 6-router static chain r0..r5; the filter goes on transit
router r2's eastbound interface, so all traffic from the west to
r3/r4/r5 provably crosses it.

Also demonstrates the on-disk snapshot workflow: the network is saved
to and reloaded from a config directory before review.

Run:  python examples/acl_change_review.py
"""

import tempfile

from repro.api import ChangeSet, Network
from repro.core.invariants import (
    IsolationInvariant,
    LoopFreedom,
    ReachabilityInvariant,
)
from repro.workloads.scenarios import line_static


def main() -> None:
    scenario = line_static(6)

    with tempfile.TemporaryDirectory() as directory:
        scenario.snapshot.save(directory)
        net = Network.load(directory)
        print(f"loaded snapshot from disk: {net.summary()}")

    victim = scenario.fabric.host_subnets["r4"][0]   # to be blocked
    keep = scenario.fabric.host_subnets["r3"][0]     # must keep working
    transit, interface = "r2", "eth1"                # eastbound

    invariants = [
        IsolationInvariant("r0", "r4", victim),       # the intent
        ReachabilityInvariant("r0", "r3", keep),      # collateral guard
        LoopFreedom(),
    ]

    proposed = (
        ChangeSet(f"block {victim} out of {transit}[{interface}]")
        .permit(transit, "EDGE_FILTER", "0.0.0.0/0")
        .deny(transit, "EDGE_FILTER", victim, position=0)
        .bind_acl(transit, interface, "EDGE_FILTER", "out")
    )
    print(f"\nreviewing proposed change:\n{proposed.describe()}")
    report = net.preview(proposed)
    print(f"\n{report.summary()}")

    verdicts = net.check(report, invariants)
    print("\ninvariant verdicts:")
    for violation in verdicts:
        intended = "isolate" in violation.invariant and violation.repaired
        print(f"  [{'intent satisfied' if intended else 'VIOLATION'}] {violation}")
    guard_broken = any(
        not violation.repaired
        for violation in verdicts
        if "reach(" in violation.invariant
    )
    print(f"\ncollateral damage: {'YES' if guard_broken else 'none'} "
          "- change is safe to deploy")
    net.apply(proposed)

    # The fat-fingered variant: deny the whole host space instead of
    # one /24.  Every westbound-to-eastbound flow dies, including the
    # guarded r0 -> r3 traffic.  The preview catches it; nothing is
    # ever deployed.
    oops = (
        ChangeSet("fat-fingered: deny the whole host space")
        .deny(transit, "EDGE_FILTER", "172.16.0.0/12", position=0)
    )
    print(f"\nreviewing fat-fingered variant:\n{oops.describe()}")
    report = net.preview(oops)
    tripped = [
        violation
        for violation in net.check(report, invariants)
        if not violation.repaired
    ]
    print(f"\ninvariants tripped: {len(tripped)}")
    for violation in tripped:
        print(f"  {violation}")
    assert tripped, "the guard should have caught this"
    print("\nthe bad rule is rejected in preview; nothing to revert "
          "(the fork already rolled it back).")


if __name__ == "__main__":
    main()
